#!/usr/bin/env python3
"""Integration example: plugging a custom crowdsourcing platform in.

`BayesCrowd` talks to any object exposing ``post_batch(tasks) -> answers``
-- that is the whole integration surface for a real market (AMT HITs, an
internal labeling tool, a Slack bot...).  This example implements two
custom platforms:

* `ScriptedPlatform` -- answers from a prepared answer sheet (e.g. replay
  of a previous live campaign), falling back to "EQUAL" when unknown;
* `LoggingPlatform`  -- wraps the simulated platform and records a full
  audit trail of questions and answers, which is what a production
  deployment would persist for billing and quality review.

Run:
    python examples/custom_platform.py
"""

import numpy as np

from repro import BayesCrowd, BayesCrowdConfig, Relation, f1_score, generate_nba, skyline
from repro.crowd import SimulatedCrowdPlatform


class ScriptedPlatform:
    """Answers tasks from a prepared {question: relation} sheet."""

    def __init__(self, answer_sheet):
        self.answer_sheet = answer_sheet
        self.unknown_questions = []

    def post_batch(self, tasks):
        answers = {}
        for task in tasks:
            question = task.question()
            if question in self.answer_sheet:
                answers[task] = self.answer_sheet[question]
            else:
                self.unknown_questions.append(question)
                answers[task] = Relation.EQUAL  # conservative default
        return answers


class LoggingPlatform:
    """Decorates another platform with an audit trail."""

    def __init__(self, inner):
        self.inner = inner
        self.audit_trail = []

    def post_batch(self, tasks):
        answers = self.inner.post_batch(tasks)
        for task, relation in answers.items():
            self.audit_trail.append(
                {
                    "task_id": task.task_id,
                    "for_object": task.for_object,
                    "question": task.question(),
                    "answer": relation.value,
                }
            )
        return answers


def main() -> None:
    dataset = generate_nba(n_objects=250, missing_rate=0.1, seed=17)
    truth = skyline(dataset.complete)
    config = BayesCrowdConfig(alpha=0.06, budget=30, latency=3, seed=1)

    # --- 1. audit-logged simulated crowd -------------------------------
    inner = SimulatedCrowdPlatform(dataset, rng=np.random.default_rng(0))
    logged = LoggingPlatform(inner)
    result = BayesCrowd(dataset, config, platform=logged).run()
    print("Logged run: F1 %.3f with %d tasks" % (
        f1_score(result.answers, truth), result.tasks_posted))
    print("audit trail sample:")
    for entry in logged.audit_trail[:3]:
        print("  [task %d, object %s] %s -> %s" % (
            entry["task_id"], entry["for_object"], entry["question"], entry["answer"]))

    # --- 2. replay the campaign from the recorded answer sheet ---------
    sheet = {entry["question"]: Relation(entry["answer"]) for entry in logged.audit_trail}
    scripted = ScriptedPlatform(sheet)
    replay = BayesCrowd(dataset, config, platform=scripted).run()
    print("\nReplayed run: F1 %.3f, %d unknown questions hit the fallback" % (
        f1_score(replay.answers, truth), len(scripted.unknown_questions)))
    print("replay matches the logged run:", replay.answers == result.answers)


if __name__ == "__main__":
    main()
