#!/usr/bin/env python3
"""Resilience demo: a skyline query against an unreliable crowd market.

Real markets drop tasks (nobody accepts them), return spam, rate-limit
batch posts and occasionally go down mid-campaign.  This example runs
the same query three times:

1. against the oracle simulator (every task answered, the baseline);
2. against a seeded `UnreliableCrowdPlatform` injecting no-shows, spam
   and scheduled transient outages -- the run completes *degraded*, with
   per-fault accounting, and budget is only spent on answered tasks;
3. the same chaotic run, but killed after two rounds and resumed from
   its round-level checkpoint -- landing on the identical answer set,
   because all RNG and platform state rides along in the checkpoint.

Everything is seeded, so the output is identical on every machine.

Run:
    python examples/unreliable_crowd.py
"""

import tempfile
from pathlib import Path

from repro import (
    BayesCrowd,
    BayesCrowdConfig,
    FaultModel,
    f1_score,
    generate_nba,
    skyline,
)


class KillSwitch:
    """Simulate a crash: die after N successful batch posts."""

    def __init__(self, inner, after):
        self.inner = inner
        self.after = after
        self.successes = 0

    def post_batch(self, tasks):
        if self.successes >= self.after:
            raise KeyboardInterrupt("simulated crash")
        answers = self.inner.post_batch(tasks)
        self.successes += 1
        return answers

    def __getattr__(self, name):
        return getattr(self.inner, name)


def make_config(faults=None):
    return BayesCrowdConfig(
        alpha=0.06,
        budget=30,
        latency=5,
        max_retries=3,
        backoff_base=0.0,  # demo: retry instantly instead of sleeping
        requeue_policy="requeue",
        faults=faults,
        seed=11,
    )


def main() -> None:
    dataset = generate_nba(n_objects=250, missing_rate=0.1, seed=17)
    truth = skyline(dataset.complete)
    chaos = FaultModel(
        drop_rate=0.3,        # 30% of answers never arrive
        spam_fraction=0.2,    # 20% of answers are uniform random spam
        transient_every=2,    # every 2nd batch post fails transiently
    )

    # --- 1. the oracle baseline ---------------------------------------
    clean = BayesCrowd(dataset, make_config()).run()
    print("clean run:    F1 %.3f | %d posted = %d answered | degraded=%s" % (
        f1_score(clean.answers, truth), clean.tasks_posted,
        clean.tasks_answered, clean.degraded))

    # --- 2. the same query on a hostile market ------------------------
    chaotic = BayesCrowd(dataset, make_config(chaos)).run()
    faults = ", ".join(
        "%s=%d" % (k, v) for k, v in sorted(chaotic.fault_counts.items())
    )
    print("chaotic run:  F1 %.3f | %d posted, %d answered | degraded=%s (%s)" % (
        f1_score(chaotic.answers, truth), chaotic.tasks_posted,
        chaotic.tasks_answered, chaotic.degraded, faults))
    print("budget charged only for answered tasks: %d == %s" % (
        chaotic.tasks_answered,
        " + ".join(str(r.tasks_answered) for r in chaotic.history)))

    # --- 3. crash after round 2, resume from the checkpoint -----------
    with tempfile.TemporaryDirectory() as tmp:
        checkpoint = Path(tmp) / "campaign.ckpt.json"
        crashed = BayesCrowd(dataset, make_config(chaos))
        crashed.platform = KillSwitch(crashed.platform, after=2)
        try:
            crashed.run(checkpoint_path=checkpoint)
        except KeyboardInterrupt:
            print("\ncrashed after 2 rounds; checkpoint at %s" % checkpoint.name)
        resumed = BayesCrowd(dataset, make_config(chaos)).run(
            checkpoint_path=checkpoint, resume=True
        )
    print("resumed run:  F1 %.3f | resumed=%s | matches uninterrupted: %s" % (
        f1_score(resumed.answers, truth), resumed.resumed,
        resumed.answers == chaotic.answers))

    # Even across faults and a resume, the engine's perf counters keep an
    # honest ledger of the work done after the checkpoint was restored.
    stats = resumed.engine_stats
    print("resumed perf: %d probabilities (%.0f/s), cache hit rate %.0f%%, "
          "%d objects rescored in %d rankings" % (
              stats["computations"], stats["probabilities_per_sec"],
              100 * stats["cache_hit_rate"], stats["objects_rescored"],
              stats["rankings"]))


if __name__ == "__main__":
    main()
