#!/usr/bin/env python3
"""Extension example: handling an unreliable crowd.

The paper's experiments control worker accuracy globally and note that in
practice "we could select the workers whose accuracies being above one
certain value to answer tasks" (AMT-style recruitment).  This example
exercises the quality toolkit on a deliberately mixed worker pool:

1. plain majority voting over everyone,
2. calibration against gold questions + log-odds weighted voting,
3. calibration + recruiting only workers above an accuracy bar.

Run:
    python examples/worker_quality.py
"""

import numpy as np

from repro import BayesCrowd, BayesCrowdConfig, f1_score, generate_nba, skyline
from repro.crowd import (
    SimulatedCrowdPlatform,
    WorkerPool,
    estimate_worker_accuracies,
    filter_pool,
    make_weighted_aggregator,
)

#: A mixed crowd: a few experts, many mediocre workers, some spammers.
POOL_ACCURACIES = [0.98] * 5 + [0.75] * 15 + [0.45] * 10


def run_query(platform, dataset):
    config = BayesCrowdConfig(alpha=0.05, budget=60, latency=6, strategy="hhs", seed=2)
    return BayesCrowd(dataset, config, platform=platform).run()


def main() -> None:
    dataset = generate_nba(n_objects=400, missing_rate=0.12, seed=11)
    truth = skyline(dataset.complete)
    print(
        "Dataset: %d objects, %.0f%% missing; crowd: %d workers "
        "(5 experts, 15 average, 10 spammers)"
        % (dataset.n_objects, 100 * dataset.missing_rate, len(POOL_ACCURACIES))
    )

    # 1. plain majority voting
    rng = np.random.default_rng(0)
    pool = WorkerPool(list(POOL_ACCURACIES), rng=rng)
    platform = SimulatedCrowdPlatform(dataset, worker_pool=pool, rng=rng)
    result = run_query(platform, dataset)
    print("\nmajority voting:            F1 %.3f (majority answer accuracy %.2f)"
          % (f1_score(result.answers, truth), platform.stats.majority_accuracy()))

    # 2. calibrate workers on gold questions, then weight votes
    rng = np.random.default_rng(0)
    pool = WorkerPool(list(POOL_ACCURACIES), rng=rng)
    estimates = estimate_worker_accuracies(pool, n_gold_questions=25, rng=rng)
    aggregator = make_weighted_aggregator(estimates, rng=rng)
    platform = SimulatedCrowdPlatform(
        dataset, worker_pool=pool, rng=rng, aggregator=aggregator
    )
    result = run_query(platform, dataset)
    print("calibrated weighted voting: F1 %.3f (majority answer accuracy %.2f)"
          % (f1_score(result.answers, truth), platform.stats.majority_accuracy()))

    # 3. recruit only workers estimated above 0.7
    rng = np.random.default_rng(0)
    pool = WorkerPool(list(POOL_ACCURACIES), rng=rng)
    estimates = estimate_worker_accuracies(pool, n_gold_questions=25, rng=rng)
    recruited = filter_pool(pool, estimates, minimum_accuracy=0.7, rng=rng)
    platform = SimulatedCrowdPlatform(dataset, worker_pool=recruited, rng=rng)
    result = run_query(platform, dataset)
    print("recruitment above 0.7:      F1 %.3f (pool of %d, mean accuracy %.2f)"
          % (f1_score(result.answers, truth), len(recruited.workers),
             recruited.mean_accuracy()))


if __name__ == "__main__":
    main()
