#!/usr/bin/env python3
"""Crash-safe sessions: journal a run, kill it mid-round, recover it.

Walks the full durability loop of the session runtime:

1. run a query with a write-ahead answer journal (and checkpoint);
2. simulate a crash by aborting the run partway through a round --
   the journal then holds decisions the checkpoint does not;
3. resume: checkpoint + journal-suffix replay reproduces the state the
   crashed process held, and the finished result is bit-identical to an
   uninterrupted run;
4. host the same query under a :class:`SessionSupervisor`, which does
   the restart-and-recover dance automatically.

Run:
    python examples/session_resume.py
"""

import tempfile
from pathlib import Path

import numpy as np

from repro import BayesCrowd, BayesCrowdConfig, generate_nba
from repro.crowd import SimulatedCrowdPlatform
from repro.session import SessionSupervisor, journal_problems, read_journal


def make_dataset():
    return generate_nba(n_objects=20, missing_rate=0.4, seed=3)


def make_config(**overrides):
    base = dict(
        budget=12, latency=4, worker_accuracy=0.7, alpha=0.1, seed=5,
        strict_integrity=True,
    )
    base.update(overrides)
    return BayesCrowdConfig(**base)


def make_platform(dataset):
    return SimulatedCrowdPlatform(
        dataset, worker_accuracy=0.7, rng=np.random.default_rng(5)
    )


class AbortAfterAnswers:
    """Platform wrapper that simulates a crash after N answered tasks.

    A real crash is a SIGKILL (see tests/test_crash_matrix.py, which
    injects one on every journal-append boundary); raising out of the
    platform mid-round exercises the same recovery path in one process.
    The abort fires once -- recovery then runs against the same wrapper.
    """

    def __init__(self, inner, abort_after):
        self.inner = inner
        self.abort_after = abort_after
        self.answered = 0
        self.armed = True

    def post_batch(self, tasks):
        answers = self.inner.post_batch(tasks)
        self.answered += len(answers)
        if self.armed and self.answered >= self.abort_after:
            self.armed = False
            raise RuntimeError("simulated crash mid-round")
        return answers

    def __getattr__(self, name):
        return getattr(self.inner, name)


def main() -> None:
    workdir = Path(tempfile.mkdtemp(prefix="bayescrowd-session-"))
    journal = workdir / "run.journal.jsonl"
    checkpoint = workdir / "run.ckpt.json"
    dataset = make_dataset()

    # --- 1. the uninterrupted reference run ----------------------------
    baseline = BayesCrowd(dataset, make_config(),
                          platform=make_platform(dataset)).run()
    print("uninterrupted run: %d rounds, %d tasks, answers %s" % (
        baseline.rounds, baseline.tasks_posted, baseline.answers))

    # --- 2. journal a run and crash it mid-flight ----------------------
    platform = AbortAfterAnswers(make_platform(dataset), abort_after=5)
    try:
        BayesCrowd(dataset, make_config(), platform=platform).run(
            journal_path=journal, checkpoint_path=checkpoint
        )
    except RuntimeError:
        print("\n'crash' injected after %d answers" % platform.answered)

    records = read_journal(journal)
    print("journal survived with %d records (kinds: %s)" % (
        len(records), " ".join(r.kind for r in records)))
    print("journal verifies: %s" % ("yes" if not journal_problems(journal) else "NO"))

    # --- 3. recover: checkpoint + journal-suffix replay ----------------
    resumed = BayesCrowd(dataset, make_config(), platform=platform).run(
        journal_path=journal, checkpoint_path=checkpoint, resume=True
    )
    counters = resumed.metrics["counters"]
    print("\nresumed run: %d rounds, %d tasks, answers %s" % (
        resumed.rounds, resumed.tasks_posted, resumed.answers))
    print("  recovered %d cut round(s), replayed %d journaled answer(s)" % (
        counters.get("recovered_rounds", 0),
        counters.get("journal_replayed_answers", 0)))
    print("  matches the uninterrupted run: %s" % (
        "yes" if (resumed.answers == baseline.answers
                  and resumed.rounds == baseline.rounds
                  and resumed.tasks_posted == baseline.tasks_posted)
        else "NO"))

    # --- 4. the same loop, supervised ----------------------------------
    supervisor = SessionSupervisor(workdir / "supervised", max_restarts=2,
                                   restart_backoff_base=0.0)
    crashy = AbortAfterAnswers(make_platform(dataset), abort_after=5)
    supervisor.create("demo", dataset, make_config(), platform=crashy)
    result = supervisor.run("demo")
    session = supervisor.get("demo")
    print("\nsupervised session: state=%s after %d restart(s)" % (
        session.state, session.restarts))
    for from_state, to_state, reason in session.transitions:
        print("  %s -> %s (%s)" % (from_state, to_state, reason))
    print("  supervised answers match: %s" % (
        "yes" if result.answers == baseline.answers else "NO"))


if __name__ == "__main__":
    main()
