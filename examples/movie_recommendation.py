#!/usr/bin/env python3
"""Domain example: movie recommendation with crowdsourced ratings.

The paper's motivating scenario at larger scale: a catalogue of movies,
each rated by a panel of audiences, with many ratings missing ("it is
impossible for all audiences to watch/score a certain movie").  The
skyline -- movies no other movie beats on every audience's taste -- makes
a diverse recommendation slate.  Missing comparisons are resolved by
asking the crowd ("would audience 3 rate film X above 6?") under a
budget, and the example inspects which questions the strategies choose.

Run:
    python examples/movie_recommendation.py
"""

import numpy as np

from repro import BayesCrowd, BayesCrowdConfig, skyline
from repro.bayesnet import BayesianNetwork, dag_from_edges, random_cpt
from repro.datasets import balanced_mcar_mask, from_complete


def build_catalogue(n_movies=400, n_audiences=6, seed=42):
    """Movies rated 0-9 by correlated audiences (taste clusters)."""
    rng = np.random.default_rng(seed)
    # Audience tastes form a chain: neighbours influence each other.
    dag = dag_from_edges(n_audiences, iter((j, j + 1) for j in range(n_audiences - 1)))
    cpts = [
        random_cpt(
            j,
            10,
            sorted(dag.parents(j)),
            [10] * len(dag.parents(j)),
            rng,
            concentration=0.5,
        )
        for j in range(n_audiences)
    ]
    network = BayesianNetwork(dag, [10] * n_audiences, cpts)
    ratings = network.sample(n_movies, rng)
    mask = balanced_mcar_mask(n_movies, n_audiences, 0.15, rng)
    return from_complete(
        ratings,
        mask,
        [10] * n_audiences,
        name="movie-catalogue",
        attribute_names=["audience_%d" % (j + 1) for j in range(n_audiences)],
    )


def main() -> None:
    dataset = build_catalogue()
    truth = skyline(dataset.complete)
    print(
        "Catalogue: %d movies x %d audiences, %.0f%% ratings missing, "
        "%d movies in the true skyline"
        % (dataset.n_objects, dataset.n_attributes,
           100 * dataset.missing_rate, len(truth))
    )

    for strategy in ("fbs", "ubs", "hhs"):
        config = BayesCrowdConfig(
            alpha=0.08, budget=50, latency=5, strategy=strategy, m=10, seed=4
        )
        query = BayesCrowd(dataset, config)
        result = query.run()
        print(
            "\n%s: F1 %.3f with %d questions in %d rounds (%.2fs)"
            % (strategy.upper(), result.f1(truth), result.tasks_posted,
               result.rounds, result.seconds)
        )
        stats = result.engine_stats
        print(
            "  perf: c-table via %s backend (%.0f pairs/s); "
            "%d probabilities computed (%.0f/s), cache hit rate %.0f%%"
            % (stats["ctable_backend"], stats["ctable_pairs_per_sec"],
               stats["computations"], stats["probabilities_per_sec"],
               100 * stats["cache_hit_rate"])
        )
        print(
            "  perf: incremental re-ranking rescored %d objects across "
            "%d rankings" % (stats["objects_rescored"], stats["rankings"])
        )
        if strategy == "hhs" and result.history:
            print("  sample questions from round 1:")
            first_round_objects = result.history[0].objects[:3]
            for obj in first_round_objects:
                print("    about movie #%d (its skyline membership was uncertain)" % obj)

    print(
        "\nRecommendation slate = answer set; with a bigger budget the "
        "slate converges to the true skyline."
    )


if __name__ == "__main__":
    main()
