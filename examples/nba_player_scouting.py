#!/usr/bin/env python3
"""Domain example: scouting standout NBA player seasons with crowd help.

Scenario from the paper's evaluation: a scouting department wants the
skyline of player seasons over eleven statistics, but a tenth of the
stat sheet is missing (unlogged games, incomplete box scores).  Instead
of guessing, the missing comparisons that matter are sent to a crowd of
basketball fans under a fixed question budget and a deadline expressed
in rounds.

Run:
    python examples/nba_player_scouting.py [n_players] [budget]
"""

import sys

from repro import BayesCrowd, BayesCrowdConfig, f1_score, generate_nba, skyline


def main() -> None:
    n_players = int(sys.argv[1]) if len(sys.argv) > 1 else 600
    budget = int(sys.argv[2]) if len(sys.argv) > 2 else 60

    dataset = generate_nba(n_objects=n_players, missing_rate=0.1, seed=7)
    print(
        "Scouting dataset: %d player seasons x %d stats, %.0f%% of cells missing"
        % (dataset.n_objects, dataset.n_attributes, 100 * dataset.missing_rate)
    )

    config = BayesCrowdConfig(
        alpha=0.05,          # prune hopeless candidates (Algorithm 2)
        budget=budget,       # affordable crowd questions
        latency=6,           # acceptable number of batches
        strategy="hhs",      # hybrid heuristic selection (Algorithm 4)
        m=15,
        worker_accuracy=0.95,
        seed=1,
    )
    query = BayesCrowd(dataset, config)
    result = query.run()

    truth = skyline(dataset.complete)
    print("\nBefore crowdsourcing (machine-only inference):")
    print("  answer set size %d, F1 %.3f" % (
        len(result.initial_answers), f1_score(result.initial_answers, truth)))

    print("\nAfter %d crowd tasks in %d rounds:" % (result.tasks_posted, result.rounds))
    print("  answer set size %d, F1 %.3f" % (len(result.answers), result.f1(truth)))
    print("  algorithm time %.2fs (modeling %.2fs)" % (
        result.seconds, result.modeling_seconds))

    print("\nRound-by-round progress:")
    for record in result.history:
        print("  round %d: %2d tasks, %3d conditions still open" % (
            record.round_index, record.tasks_posted, record.open_conditions))

    from repro.analysis import analyze_run

    print("\nRun analysis:")
    for line in analyze_run(result).summary_lines():
        print("  " + line)

    certain = set(result.certain_answers)
    print("\nTop of the skyline (first 10 answers):")
    for obj in result.answers[:10]:
        stats = " ".join(
            "?" if dataset.is_missing(obj, j) else str(dataset.values[obj, j])
            for j in range(dataset.n_attributes)
        )
        tag = "certain" if obj in certain else "Pr>0.5"
        print("  season #%-5d [%s]  levels: %s" % (obj, tag, stats))


if __name__ == "__main__":
    main()
