#!/usr/bin/env python3
"""Quickstart: the paper's running example, end to end.

Reproduces Tables 1 and 3-5 of the paper: five movies with missing
audience ratings, the c-table of the skyline query, probability
computation with ADPLL, and a crowdsourced query under a budget of six
tasks and a three-round latency constraint (Example 4).

Run:
    python examples/quickstart.py
"""

from repro import BayesCrowd, BayesCrowdConfig, skyline
from repro.ctable import build_ctable
from repro.datasets import example_distributions, sample_dataset
from repro.probability import DistributionStore, ProbabilityEngine


def main() -> None:
    dataset = sample_dataset()
    print("Dataset (Table 1): %d movies, %d audiences, missing rate %.0f%%" % (
        dataset.n_objects, dataset.n_attributes, 100 * dataset.missing_rate))
    for i, name in enumerate(dataset.object_names):
        row = [
            str(dataset.values[i, j]) if not dataset.is_missing(i, j) else "?"
            for j in range(dataset.n_attributes)
        ]
        print("  %-25s %s" % (name, " ".join(v.rjust(2) for v in row)))

    # --- Modeling phase: build the c-table (Table 3) -------------------
    ctable = build_ctable(dataset, alpha=1.0)
    print("\nC-table (Table 3):")
    for obj in range(dataset.n_objects):
        print("  phi(o%d) = %s" % (obj + 1, ctable.condition(obj)))

    # --- Probability computation with ADPLL (Example 3) ----------------
    store = DistributionStore(example_distributions(), ctable.constraints)
    engine = ProbabilityEngine(store, method="adpll")
    print("\nAnswer probabilities (Example 3 gives Pr(phi(o5)) = 0.823):")
    for obj in range(dataset.n_objects):
        print("  Pr(phi(o%d)) = %.3f" % (obj + 1, engine.probability(ctable.condition(obj))))

    # --- Crowdsourcing phase (Example 4: B=6, L=3, m=2, HHS) -----------
    config = BayesCrowdConfig(
        alpha=1.0, budget=6, latency=3, strategy="hhs", m=2,
        distribution_source="uniform",
    )
    query = BayesCrowd(dataset, config, distributions=example_distributions())
    result = query.run()

    print("\nCrowdsourced skyline query (budget 6, latency 3, HHS):")
    for record in result.history:
        print("  round %d: %d task(s) for objects %s, %d condition(s) still open" % (
            record.round_index, record.tasks_posted,
            [o + 1 for o in record.objects], record.open_conditions))
    print("  posted %d tasks over %d rounds" % (result.tasks_posted, result.rounds))

    truth = skyline(dataset.complete)
    print("\nAnswer set: %s" % [dataset.object_names[o] for o in result.answers])
    print("Ground truth (complete-data skyline): %s" % [dataset.object_names[o] for o in truth])
    print("F1 = %.3f" % result.f1(truth))


if __name__ == "__main__":
    main()
