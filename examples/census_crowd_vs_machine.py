#!/usr/bin/env python3
"""Domain example: skyline over census-style records, crowd vs machine.

The Adult-shaped synthetic dataset plays the role of a census extract
(age, education, occupation, hours, income, ...) with survey non-response
producing missing cells -- "participants choose to ignore some sensitive
questions on surveys" (paper introduction).  The example contrasts three
ways to answer the skyline query:

1. machine-only inference from the Bayesian-network posteriors,
2. BayesCrowd with a modest crowd budget,
3. BayesCrowd with a generous budget,

and shows how the F1 against the (held-out) complete data climbs, and
how the Bayesian network's correlation model sharpens the starting point
compared with zero-knowledge uniform priors.

Run:
    python examples/census_crowd_vs_machine.py
"""

from repro import BayesCrowd, BayesCrowdConfig, f1_score, generate_synthetic, skyline
from repro.baselines import machine_only_skyline


def main() -> None:
    dataset = generate_synthetic(n_objects=1200, missing_rate=0.12, seed=3)
    truth = skyline(dataset.complete)
    print(
        "Census extract: %d records x %d attributes, %.0f%% cells missing, "
        "%d true skyline records"
        % (dataset.n_objects, dataset.n_attributes,
           100 * dataset.missing_rate, len(truth))
    )

    base = dict(alpha=0.05, latency=8, strategy="hhs", m=15, seed=2)

    # 1. machine only, with and without the learned Bayesian network
    for source in ("uniform", "bayesnet"):
        config = BayesCrowdConfig(budget=0, distribution_source=source, **base)
        result = machine_only_skyline(dataset, config)
        print(
            "machine-only (%-8s priors): F1 %.3f, answer set %d"
            % (source, f1_score(result.answers, truth), len(result.answers))
        )

    # 2./3. crowdsourced, increasing budgets
    for budget in (40, 160):
        config = BayesCrowdConfig(budget=budget, **base)
        result = BayesCrowd(dataset, config).run()
        print(
            "crowdsourced (budget %4d):     F1 %.3f, %d tasks in %d rounds, %.2fs"
            % (budget, result.f1(truth), result.tasks_posted, result.rounds,
               result.seconds)
        )


if __name__ == "__main__":
    main()
