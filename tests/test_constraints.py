"""Unit tests for the variable constraint store."""

import numpy as np
import pytest

from repro.ctable import (
    Relation,
    VariableConstraints,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)

V = (0, 0)  # Var(o1, a1), domain size 6
W = (1, 0)  # Var(o2, a1)


@pytest.fixture
def store():
    return VariableConstraints(domain_sizes=[6, 4])


class TestVarConstAnswers:
    def test_greater_narrows_allowed(self, store):
        store.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert store.allowed_values(V).tolist() == [3, 4, 5]

    def test_less_narrows_allowed(self, store):
        store.apply_answer(var_greater_const(0, 0, 2), Relation.LESS)
        assert store.allowed_values(V).tolist() == [0, 1]

    def test_equal_pins(self, store):
        store.apply_answer(var_greater_const(0, 0, 2), Relation.EQUAL)
        assert store.is_pinned(V)
        assert store.pinned_value(V) == 2

    def test_const_var_orientation_flipped(self, store):
        # "3 > Var" answered GREATER means the variable is below 3.
        store.apply_answer(const_greater_var(3, 0, 0), Relation.GREATER)
        assert store.allowed_values(V).tolist() == [0, 1, 2]

    def test_constraints_intersect(self, store):
        store.apply_answer(var_greater_const(0, 0, 1), Relation.GREATER)
        store.apply_answer(var_greater_const(0, 0, 4), Relation.LESS)
        assert store.allowed_values(V).tolist() == [2, 3]

    def test_contradiction_keeps_newest(self, store):
        store.apply_answer(var_greater_const(0, 0, 4), Relation.GREATER)  # {5}
        store.apply_answer(var_greater_const(0, 0, 2), Relation.LESS)  # conflicts
        assert store.allowed_values(V).tolist() == [0, 1]

    def test_impossible_relation_degenerates_gracefully(self, store):
        # "> 5" with domain 0..5 is unsatisfiable: clamp to the max value.
        store.apply_answer(var_greater_const(0, 0, 5), Relation.GREATER)
        assert store.allowed_values(V).tolist() == [5]

    def test_version_increments(self, store):
        assert store.version == 0
        store.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert store.version == 1


class TestVarVarAnswers:
    def test_relation_recorded_both_orientations(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        assert store.resolve(var_greater_var(0, 1, 0)) is True
        assert store.resolve(var_greater_var(1, 0, 0)) is False

    def test_equal_answer_resolves_false(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.EQUAL)
        assert store.resolve(var_greater_var(0, 1, 0)) is False
        assert store.resolve(var_greater_var(1, 0, 0)) is False

    def test_equal_shares_allowed_sets(self, store):
        store.apply_answer(var_greater_const(0, 0, 3), Relation.GREATER)
        store.apply_answer(var_greater_var(0, 1, 0), Relation.EQUAL)
        assert store.allowed_values(W).tolist() == [4, 5]


class TestResolution:
    def test_unconstrained_unresolved(self, store):
        assert store.resolve(var_greater_const(0, 0, 2)) is None

    def test_var_const_resolution_from_bounds(self, store):
        store.apply_answer(var_greater_const(0, 0, 3), Relation.GREATER)  # {4,5}
        assert store.resolve(var_greater_const(0, 0, 2)) is True
        assert store.resolve(var_greater_const(0, 0, 5)) is False
        assert store.resolve(var_greater_const(0, 0, 4)) is None

    def test_const_var_resolution(self, store):
        store.apply_answer(var_greater_const(0, 0, 3), Relation.LESS)  # {0..2}
        assert store.resolve(const_greater_var(3, 0, 0)) is True
        assert store.resolve(const_greater_var(0, 0, 0)) is False

    def test_var_var_from_disjoint_intervals(self, store):
        store.apply_answer(var_greater_const(0, 0, 3), Relation.GREATER)  # V in {4,5}
        store.apply_answer(var_greater_const(1, 0, 2), Relation.LESS)  # W in {0,1}
        assert store.resolve(var_greater_var(0, 1, 0)) is True
        assert store.resolve(var_greater_var(1, 0, 0)) is False

    def test_var_var_overlapping_unresolved(self, store):
        store.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert store.resolve(var_greater_var(0, 1, 0)) is None


class TestDistributionRestriction:
    def test_constrain_pmf_renormalizes(self, store):
        store.apply_answer(var_greater_const(0, 0, 3), Relation.GREATER)
        pmf = np.full(6, 1 / 6)
        constrained = store.constrain_pmf(V, pmf)
        assert constrained[:4].sum() == 0.0
        assert constrained.sum() == pytest.approx(1.0)
        assert constrained[4] == pytest.approx(0.5)

    def test_unconstrained_pmf_passthrough(self, store):
        pmf = np.array([0.5, 0.1, 0.1, 0.1, 0.1, 0.1])
        assert store.constrain_pmf(V, pmf) == pytest.approx(pmf)

    def test_zero_mass_support_falls_back_to_uniform(self, store):
        store.apply_answer(var_greater_const(0, 0, 3), Relation.GREATER)
        pmf = np.array([0.5, 0.5, 0.0, 0.0, 0.0, 0.0])
        constrained = store.constrain_pmf(V, pmf)
        assert constrained[4] == pytest.approx(0.5)
        assert constrained[5] == pytest.approx(0.5)


class TestVersionTracking:
    def test_variables_unchanged_since(self, store):
        store.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        v1 = store.version
        store.apply_answer(var_greater_const(1, 0, 1), Relation.LESS)
        assert store.variables_unchanged_since([V], v1)
        assert not store.variables_unchanged_since([W], v1)
        assert not store.variables_unchanged_since([V], 0)

    def test_constrained_variables(self, store):
        assert store.constrained_variables() == frozenset()
        store.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert store.constrained_variables() == frozenset({V})


class TestTransitiveInference:
    A, B, C = (0, 0), (1, 0), (2, 0)

    def test_chain_of_greater(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)  # A > B
        store.apply_answer(var_greater_var(1, 2, 0), Relation.GREATER)  # B > C
        assert store.resolve(var_greater_var(0, 2, 0)) is True  # A > C inferred
        assert store.resolve(var_greater_var(2, 0, 0)) is False

    def test_equality_bridges_chains(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)  # A > B
        store.apply_answer(var_greater_var(1, 2, 0), Relation.EQUAL)    # B = C
        assert store.resolve(var_greater_var(0, 2, 0)) is True  # A > C
        assert store.resolve(var_greater_var(2, 1, 0)) is False  # C > B false (equal)

    def test_affected_set_covers_component(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        affected = store.apply_answer(var_greater_var(1, 2, 0), Relation.GREATER)
        # The new B > C fact can resolve A-vs-C, so A must be reported.
        assert self.A in affected and self.B in affected and self.C in affected

    def test_noisy_cycle_tolerated(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        store.apply_answer(var_greater_var(1, 0, 0), Relation.GREATER)  # contradicts
        # No crash; direct facts win where recorded, no infinite loops.
        assert store.resolve(var_greater_var(0, 1, 0)) in (True, False)


class TestBoundPropagation:
    def test_lower_bound_flows_upward(self, store):
        # A > B and B > 3 forces A > 4 (domain 0..5: A = 5).
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        store.apply_answer(var_greater_const(1, 0, 3), Relation.GREATER)
        assert store.allowed_values((0, 0)).tolist() == [5]
        assert store.resolve(var_greater_const(0, 0, 4)) is True

    def test_upper_bound_flows_downward(self, store):
        # A > B and A < 2 forces B < 1 (domain 0..5: B = 0).
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        store.apply_answer(var_greater_const(0, 0, 2), Relation.LESS)
        assert store.allowed_values((1, 0)).tolist() == [0]

    def test_propagation_through_chain(self, store):
        # A > B > C with C = 3 forces B >= 4 and A = 5.
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        store.apply_answer(var_greater_var(1, 2, 0), Relation.GREATER)
        store.apply_answer(var_greater_const(2, 0, 3), Relation.EQUAL)
        assert store.allowed_values((1, 0)).tolist() == [4]
        assert store.allowed_values((0, 0)).tolist() == [5]

    def test_strict_edge_narrows_immediately(self, store):
        # A > B alone removes 0 from A's domain and 5 from B's.
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        assert 0 not in store.allowed_values((0, 0)).tolist()
        assert 5 not in store.allowed_values((1, 0)).tolist()

    def test_propagation_reports_touched_variables(self, store):
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        affected = store.apply_answer(var_greater_const(1, 0, 3), Relation.GREATER)
        assert (0, 0) in affected  # A's domain changed via propagation


class TestTruthPreservation:
    """With truthful answers, inference must never contradict reality."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @staticmethod
    def _random_expressions(rng, n_vars, domain, count):
        expressions = []
        for __ in range(count):
            a = int(rng.integers(n_vars))
            if rng.random() < 0.5:
                expressions.append(var_greater_const(a, 0, int(rng.integers(domain))))
            else:
                b = int(rng.integers(n_vars))
                while b == a:
                    b = int(rng.integers(n_vars))
                expressions.append(var_greater_var(a, b, 0))
        return expressions

    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_true_values_stay_allowed_and_resolutions_correct(self, seed):
        import numpy as np

        rng = np.random.default_rng(seed)
        n_vars = int(rng.integers(2, 6))
        domain = int(rng.integers(3, 7))
        truth = {(v, 0): int(rng.integers(domain)) for v in range(n_vars)}
        store = VariableConstraints([domain])
        expressions = self._random_expressions(rng, n_vars, domain, 12)

        for expression in expressions:
            left, right = expression.left, expression.right
            def value_of(operand):
                if hasattr(operand, "variable"):
                    return truth[operand.variable]
                return operand.value
            lv, rv = value_of(left), value_of(right)
            store.apply_answer(expression, Relation.of(lv, rv))

        # 1. every variable keeps its true value possible
        for variable, value in truth.items():
            assert value in store.allowed_values(variable).tolist()
        # 2. any resolved expression resolves to its actual truth
        probes = self._random_expressions(rng, n_vars, domain, 20)
        for expression in probes:
            resolution = store.resolve(expression)
            if resolution is not None:
                assert resolution == expression.evaluate(truth)


class TestInferenceModes:
    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            VariableConstraints([6], mode="magic")

    def test_direct_mode_resolves_only_the_answered_expression(self):
        store = VariableConstraints([6], mode="direct")
        e = var_greater_const(0, 0, 2)
        store.apply_answer(e, Relation.GREATER)
        assert store.resolve(e) is True
        # A weaker comparison on the same variable stays unresolved.
        assert store.resolve(var_greater_const(0, 0, 1)) is None
        # And the allowed set is untouched.
        assert len(store.allowed_values((0, 0))) == 6

    def test_intervals_mode_resolves_implied_comparisons(self):
        store = VariableConstraints([6], mode="intervals")
        store.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert store.resolve(var_greater_const(0, 0, 1)) is True
        assert store.resolve(var_greater_const(0, 0, 5)) is False

    def test_intervals_mode_skips_transitivity(self):
        store = VariableConstraints([6], mode="intervals")
        store.apply_answer(var_greater_var(0, 1, 0), Relation.GREATER)
        store.apply_answer(var_greater_var(1, 2, 0), Relation.GREATER)
        # Direct pair answers resolve...
        assert store.resolve(var_greater_var(0, 1, 0)) is True
        # ...but the transitive consequence does not.
        assert store.resolve(var_greater_var(0, 2, 0)) is None

    def test_full_mode_is_default(self):
        assert VariableConstraints([6]).mode == "full"

    def test_answered_expression_resolution_survives_in_all_modes(self):
        for mode in ("direct", "intervals", "full"):
            store = VariableConstraints([6], mode=mode)
            e = var_greater_var(0, 1, 0)
            store.apply_answer(e, Relation.LESS)
            assert store.resolve(e) is False
