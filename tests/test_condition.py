"""Unit + property tests for CNF conditions."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctable import Condition, const_greater_var, var_greater_const, var_greater_var

E1 = var_greater_const(0, 0, 2)  # Var(o1,a1) > 2
E2 = var_greater_const(1, 0, 1)  # Var(o2,a1) > 1
E3 = const_greater_var(3, 0, 1)  # 3 > Var(o1,a2)
E4 = var_greater_var(0, 1, 1)    # Var(o1,a2) > Var(o2,a2)


class TestConstants:
    def test_true_false_singletons(self):
        assert Condition.true() is Condition.true()
        assert Condition.false() is Condition.false()
        assert Condition.true().is_true
        assert Condition.false().is_false
        assert not Condition.true().is_false

    def test_constants_have_no_variables(self):
        assert Condition.true().variables() == frozenset()

    def test_invalid_constructions(self):
        with pytest.raises(ValueError):
            Condition(clauses=((E1,),), value=True)
        with pytest.raises(ValueError):
            Condition(clauses=(), value=None)


class TestNormalization:
    def test_of_empty_is_true(self):
        assert Condition.of([]) is Condition.true()

    def test_of_with_empty_clause_is_false(self):
        assert Condition.of([[E1], []]).is_false

    def test_duplicate_expressions_deduped(self):
        c = Condition.of([[E1, E1, E2]])
        assert c.n_expression_occurrences() == 2

    def test_duplicate_clauses_deduped(self):
        c = Condition.of([[E1, E2], [E2, E1]])
        assert c.n_clauses() == 1

    def test_canonical_equality(self):
        a = Condition.of([[E1, E2], [E3]])
        b = Condition.of([[E3], [E2, E1]])
        assert a == b
        assert hash(a) == hash(b)

    def test_inequality(self):
        assert Condition.of([[E1]]) != Condition.of([[E2]])
        assert Condition.of([[E1]]) != Condition.true()


class TestStructure:
    def test_variables(self):
        c = Condition.of([[E1, E4], [E2]])
        assert c.variables() == frozenset({(0, 0), (0, 1), (1, 1), (1, 0)})

    def test_variable_counts(self):
        c = Condition.of([[E3, E4], [E4, E1]])
        counts = c.variable_counts()
        assert counts[(0, 1)] == 3  # E3 once + E4 twice
        assert counts[(1, 1)] == 2
        assert counts[(0, 0)] == 1

    def test_distinct_expressions(self):
        c = Condition.of([[E1, E2], [E1, E3]])
        assert c.distinct_expressions() == frozenset({E1, E2, E3})


class TestEvaluate:
    def test_cnf_semantics(self):
        c = Condition.of([[E1, E2], [E3]])
        # E1 true, E3 true
        assert c.evaluate({(0, 0): 3, (1, 0): 0, (0, 1): 1})
        # first clause false
        assert not c.evaluate({(0, 0): 1, (1, 0): 1, (0, 1): 1})
        # second clause false
        assert not c.evaluate({(0, 0): 3, (1, 0): 0, (0, 1): 3})

    def test_constant_evaluation(self):
        assert Condition.true().evaluate({})
        assert not Condition.false().evaluate({})


class TestSubstitute:
    def test_resolves_to_true(self):
        c = Condition.of([[E1]])
        assert c.substitute((0, 0), 5).is_true

    def test_resolves_to_false(self):
        c = Condition.of([[E1]])
        assert c.substitute((0, 0), 0).is_false

    def test_drops_false_disjunct_only(self):
        c = Condition.of([[E1, E2]])
        reduced = c.substitute((0, 0), 0)
        assert reduced == Condition.of([[E2]])

    def test_drops_satisfied_clause_only(self):
        c = Condition.of([[E1], [E2]])
        reduced = c.substitute((0, 0), 5)
        assert reduced == Condition.of([[E2]])

    def test_partial_var_var(self):
        c = Condition.of([[E4]])
        reduced = c.substitute((0, 1), 2)
        assert not reduced.is_constant
        assert reduced.variables() == frozenset({(1, 1)})

    def test_constant_unchanged(self):
        assert Condition.true().substitute((0, 0), 1).is_true

    def test_substitute_dedupes_clauses(self):
        # Two clauses become identical after substitution.
        c = Condition.of([[E1, E2], [E2, E3]])
        reduced = c.substitute((0, 0), 0).substitute((0, 1), 5)
        # First clause -> [E2]; second clause -> [E2]; must collapse.
        assert reduced == Condition.of([[E2]])


class TestAssignExpression:
    def test_true_drops_clause(self):
        c = Condition.of([[E1, E2], [E3]])
        assert c.assign_expression(E3, True) == Condition.of([[E1, E2]])

    def test_false_drops_disjunct(self):
        c = Condition.of([[E1, E2], [E3]])
        assert c.assign_expression(E1, False) == Condition.of([[E2], [E3]])

    def test_false_empty_clause_is_false(self):
        c = Condition.of([[E3]])
        assert c.assign_expression(E3, False).is_false

    def test_all_clauses_dropped_is_true(self):
        c = Condition.of([[E1], [E1, E2]])
        assert c.assign_expression(E1, True).is_true

    def test_unmentioned_expression_noop(self):
        c = Condition.of([[E1]])
        assert c.assign_expression(E2, True) is c


class TestSimplifyWith:
    def test_resolver_none_is_identity(self):
        c = Condition.of([[E1, E2]])
        assert c.simplify_with(lambda e: None) is c

    def test_mixed_resolution(self):
        c = Condition.of([[E1, E2], [E3, E4]])
        resolved = c.simplify_with(lambda e: False if e == E1 else (True if e == E3 else None))
        assert resolved == Condition.of([[E2]])


# ----------------------------------------------------------------------
# property: substitution commutes with evaluation
# ----------------------------------------------------------------------
@st.composite
def random_condition(draw):
    """A small random CNF over variables (0..2, 0..1) with domain 0..3."""
    variables = [(o, a) for o in range(3) for a in range(2)]
    n_clauses = draw(st.integers(1, 3))
    clauses = []
    for __ in range(n_clauses):
        n_expr = draw(st.integers(1, 3))
        clause = []
        for __ in range(n_expr):
            kind = draw(st.sampled_from(["vc", "cv", "vv"]))
            v1 = draw(st.sampled_from(variables))
            if kind == "vc":
                clause.append(var_greater_const(v1[0], v1[1], draw(st.integers(0, 3))))
            elif kind == "cv":
                clause.append(const_greater_var(draw(st.integers(0, 3)), v1[0], v1[1]))
            else:
                v2 = draw(st.sampled_from([v for v in variables if v != v1]))
                from repro.ctable import Expression, Var

                clause.append(Expression(Var(*v1), Var(*v2)))
        clauses.append(clause)
    return Condition.of(clauses)


class TestSubstitutionProperty:
    @given(random_condition(), st.data())
    @settings(max_examples=150, deadline=None)
    def test_substitute_then_evaluate_matches_direct(self, condition, data):
        variables = sorted(condition.variables())
        assignment = {
            v: data.draw(st.integers(0, 3), label=str(v)) for v in variables
        }
        direct = condition.evaluate(assignment)
        reduced = condition
        for variable, value in assignment.items():
            reduced = reduced.substitute(variable, value)
        assert reduced.is_constant
        assert reduced.is_true == direct

    @given(random_condition())
    @settings(max_examples=100, deadline=None)
    def test_canonical_hash_stable_under_clause_shuffle(self, condition):
        if condition.is_constant:
            return
        shuffled = Condition.of(reversed([list(cl) for cl in condition.clauses]))
        assert shuffled == condition
        assert hash(shuffled) == hash(condition)


class TestAbsorption:
    def test_superset_clause_dropped(self):
        c = Condition.of([[E1], [E1, E2]])
        assert c.absorbed() == Condition.of([[E1]])

    def test_equal_clauses_already_deduped(self):
        c = Condition.of([[E1, E2], [E2, E1]])
        assert c.absorbed() is c  # normalization already collapsed them

    def test_incomparable_clauses_untouched(self):
        c = Condition.of([[E1, E2], [E2, E3]])
        assert c.absorbed() is c

    def test_chain_of_supersets(self):
        c = Condition.of([[E1], [E1, E2], [E1, E2, E3]])
        assert c.absorbed() == Condition.of([[E1]])

    def test_constants_pass_through(self):
        assert Condition.true().absorbed().is_true
        assert Condition.false().absorbed().is_false

    def test_absorption_preserves_semantics(self):
        from hypothesis import given, settings
        # reuse the random_condition strategy defined above
        @given(random_condition(), st.data())
        @settings(max_examples=100, deadline=None)
        def check(condition, data):
            absorbed = condition.absorbed()
            variables = sorted(condition.variables())
            assignment = {
                v: data.draw(st.integers(0, 3), label=str(v)) for v in variables
            }
            assert absorbed.evaluate(assignment) == condition.evaluate(assignment)
        check()


class TestConditionAlgebraProperties:
    """Extra algebraic laws of the condition type."""

    @given(random_condition())
    @settings(max_examples=80, deadline=None)
    def test_simplify_with_oracle_matches_evaluation(self, condition, ):
        """Resolving every expression with a fixed oracle equals evaluating
        under any assignment consistent with that oracle."""
        if condition.is_constant:
            return
        # Oracle: expression true iff its sort_key hash is even (arbitrary
        # but consistent).
        def oracle(e):
            return (hash(e) & 1) == 0

        resolved = condition.simplify_with(oracle)
        assert resolved.is_constant
        # CNF evaluation with the same oracle:
        expected = all(
            any(oracle(e) for e in clause) for clause in condition.clauses
        )
        assert resolved.is_true == expected

    @given(random_condition(), st.data())
    @settings(max_examples=80, deadline=None)
    def test_assign_expression_is_substitution_free(self, condition, data):
        """assign_expression(e, truth) never touches other expressions."""
        if condition.is_constant:
            return
        expressions = sorted(condition.distinct_expressions(), key=lambda e: e.sort_key())
        target = data.draw(st.sampled_from(expressions), label="target")
        truth = data.draw(st.booleans(), label="truth")
        out = condition.assign_expression(target, truth)
        if out.is_constant:
            return
        assert target not in out.distinct_expressions()
        assert out.distinct_expressions() <= condition.distinct_expressions()

    @given(random_condition(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_substitution_order_irrelevant(self, condition, data):
        """Substituting two variables commutes."""
        variables = sorted(condition.variables())
        if len(variables) < 2:
            return
        v1, v2 = variables[0], variables[1]
        a = data.draw(st.integers(0, 3), label="a")
        b = data.draw(st.integers(0, 3), label="b")
        one = condition.substitute(v1, a).substitute(v2, b)
        two = condition.substitute(v2, b).substitute(v1, a)
        assert one == two
