"""Tests for the fault-injection wrapper and the error taxonomy."""

import numpy as np
import pytest

from repro.crowd import (
    ComparisonTask,
    FaultModel,
    SimulatedCrowdPlatform,
    UnreliableCrowdPlatform,
)
from repro.ctable import Relation, var_greater_const
from repro.datasets import generate_nba, sample_dataset
from repro.errors import (
    CrowdPlatformError,
    PlatformFatalError,
    PlatformTransientError,
    TaskExpiredError,
)


def make_platform(faults, seed=0, dataset=None, **platform_kwargs):
    dataset = dataset or sample_dataset()
    inner = SimulatedCrowdPlatform(
        dataset, rng=np.random.default_rng(0), **platform_kwargs
    )
    return UnreliableCrowdPlatform(inner, faults, rng=np.random.default_rng(seed))


def some_tasks(n=3):
    # Distinct variables of the movie sample: (4,1), (1,1), (4,2).
    variables = [(4, 1), (1, 1), (4, 2), (1, 3)]
    return [
        ComparisonTask(var_greater_const(obj, attr, 2), for_object=obj)
        for obj, attr in variables[:n]
    ]


class TestFaultModelValidation:
    def test_defaults_are_quiet(self):
        model = FaultModel()
        assert not model.any_faults()

    def test_any_faults_detects_each_channel(self):
        assert FaultModel(drop_rate=0.1).any_faults()
        assert FaultModel(transient_every=2).any_faults()
        assert FaultModel(max_reposts=1).any_faults()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"drop_rate": -0.1},
            {"drop_rate": 1.5},
            {"abstention_rate": 2.0},
            {"spam_fraction": -1.0},
            {"transient_rate": 1.01},
            {"straggler_rate": -0.5},
            {"transient_every": -1},
            {"fatal_after": -2},
            {"straggler_seconds": -1.0},
            {"max_reposts": -1},
        ],
    )
    def test_invalid_rates_rejected(self, kwargs):
        with pytest.raises(ValueError):
            FaultModel(**kwargs)


class TestPassThrough:
    def test_zero_faults_is_transparent(self):
        platform = make_platform(FaultModel())
        tasks = some_tasks(2)
        answers = platform.post_batch(tasks)
        assert set(answers) == set(tasks)
        assert platform.stats.tasks_unanswered == 0

    def test_empty_batch_is_free(self):
        platform = make_platform(FaultModel(transient_every=1))
        assert platform.post_batch([]) == {}
        assert platform.stats.rounds == 0

    def test_delegates_to_inner(self):
        platform = make_platform(FaultModel())
        task = some_tasks(1)[0]
        assert platform.true_relation(task) in list(Relation)
        platform.post_batch([task])
        assert platform.task_log == [task]


class TestDropAndSpam:
    def test_drop_rate_one_answers_nothing(self):
        platform = make_platform(FaultModel(drop_rate=1.0))
        tasks = some_tasks(3)
        assert platform.post_batch(tasks) == {}
        assert platform.stats.tasks_unanswered == 3

    def test_abstention_rate_one_answers_nothing(self):
        platform = make_platform(FaultModel(abstention_rate=1.0))
        assert platform.post_batch(some_tasks(2)) == {}
        assert platform.stats.tasks_unanswered == 2

    def test_drop_rate_statistics(self):
        dataset = generate_nba(n_objects=50, missing_rate=0.1, seed=0)
        platform = make_platform(FaultModel(drop_rate=0.3), dataset=dataset)
        total = answered = 0
        for trial in range(400):
            task = ComparisonTask(var_greater_const(trial % 50, 0, 2))
            answered += len(platform.post_batch([task]))
            total += 1
        assert answered / total == pytest.approx(0.7, abs=0.06)

    def test_spam_answers_are_uniform_random(self):
        platform = make_platform(FaultModel(spam_fraction=1.0))
        task = some_tasks(1)[0]
        truth = platform.true_relation(task)
        seen = set()
        for __ in range(60):
            answers = platform.post_batch([ComparisonTask(task.expression)])
            seen.update(answers.values())
        # A spammer eventually answers every option, including wrong ones.
        assert len(seen) == 3
        assert platform.stats.spam_answers == 60
        assert truth in seen

    def test_seeded_injection_is_deterministic(self):
        results = []
        for __ in range(2):
            platform = make_platform(
                FaultModel(drop_rate=0.4, spam_fraction=0.3), seed=7
            )
            tasks = some_tasks(3)
            answered = platform.post_batch(tasks)
            results.append(sorted((t.expression.question(), r.value) for t, r in answered.items()))
        assert results[0] == results[1]


class TestTransientAndFatal:
    def test_scheduled_transient_failure(self):
        platform = make_platform(FaultModel(transient_every=2))
        tasks = some_tasks(1)
        platform.post_batch(tasks)  # attempt 1 succeeds
        with pytest.raises(PlatformTransientError):
            platform.post_batch(tasks)  # attempt 2 fails
        platform.post_batch(tasks)  # attempt 3 succeeds again
        assert platform.stats.transient_failures == 1

    def test_random_transient_failure(self):
        platform = make_platform(FaultModel(transient_rate=1.0))
        with pytest.raises(PlatformTransientError):
            platform.post_batch(some_tasks(1))

    def test_fatal_after(self):
        platform = make_platform(FaultModel(fatal_after=2))
        platform.post_batch(some_tasks(1))
        with pytest.raises(PlatformFatalError):
            platform.post_batch(some_tasks(1))

    def test_error_hierarchy(self):
        assert issubclass(PlatformTransientError, CrowdPlatformError)
        assert issubclass(PlatformFatalError, CrowdPlatformError)
        assert issubclass(TaskExpiredError, CrowdPlatformError)


class TestExpiry:
    def test_reposting_beyond_allowance_expires(self):
        platform = make_platform(FaultModel(max_reposts=2))
        tasks = some_tasks(2)
        platform.post_batch(tasks)
        platform.post_batch(tasks)
        with pytest.raises(TaskExpiredError) as err:
            platform.post_batch(tasks)
        assert set(t.task_id for t in err.value.tasks) == {t.task_id for t in tasks}
        assert platform.stats.tasks_expired == 2

    def test_fresh_tasks_unaffected(self):
        platform = make_platform(FaultModel(max_reposts=1))
        platform.post_batch(some_tasks(1))
        answers = platform.post_batch(some_tasks(2))  # new task ids
        assert len(answers) == 2


class TestStragglers:
    def test_straggler_latency_accounted(self):
        platform = make_platform(
            FaultModel(straggler_rate=1.0, straggler_seconds=10.0)
        )
        platform.post_batch(some_tasks(2))
        assert platform.stats.stragglers == 2
        assert platform.simulated_wait_seconds == pytest.approx(20.0)


class TestStateRoundTrip:
    def test_state_dict_restores_fault_stream(self):
        faults = FaultModel(drop_rate=0.5, spam_fraction=0.3, transient_every=3)
        a = make_platform(faults, seed=3)
        a.post_batch(some_tasks(2))
        state = a.state_dict()

        b = make_platform(faults, seed=999)  # wrong seed on purpose
        b.load_state_dict(state)
        tasks = some_tasks(3)
        try:
            expected = a.post_batch(list(tasks))
        except PlatformTransientError:
            with pytest.raises(PlatformTransientError):
                b.post_batch(list(tasks))
            return
        got = b.post_batch(list(tasks))
        assert {t.task_id: r for t, r in got.items()} == {
            t.task_id: r for t, r in expected.items()
        }
