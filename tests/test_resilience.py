"""End-to-end resilience of the crowdsourcing loop.

Covers the fault-tolerance contract of :meth:`BayesCrowd.run`: retrying
transient platform errors, requeue-vs-refund handling of unanswered
tasks, graceful degradation on fatal errors, budget accounting under
partial answers, and round-level checkpoint/resume -- including the
chaos scenario from the acceptance criteria (drops + spam + scheduled
transient failures + a mid-run kill).
"""

import pytest

from repro.core import BayesCrowd, BayesCrowdConfig
from repro.crowd import FaultModel, SimulatedCrowdPlatform, UnreliableCrowdPlatform
from repro.errors import (
    CheckpointError,
    PlatformFatalError,
    PlatformTransientError,
)


def chaos_config(**overrides):
    """The acceptance-criteria fault mix, with instant (jitter-only) backoff."""
    defaults = dict(
        budget=24,
        latency=6,
        strategy="hhs",
        max_retries=3,
        backoff_base=0.0,
        faults=FaultModel(drop_rate=0.3, spam_fraction=0.2, transient_every=2),
        seed=11,
    )
    defaults.update(overrides)
    return BayesCrowdConfig(**defaults)


class FlakyPlatform:
    """Raise a scripted error on chosen post attempts, else delegate."""

    def __init__(self, inner, errors):
        self.inner = inner
        self.errors = dict(errors)  # attempt number -> exception instance
        self.attempts = 0

    def post_batch(self, tasks):
        self.attempts += 1
        error = self.errors.get(self.attempts)
        if error is not None:
            raise error
        return self.inner.post_batch(tasks)

    def __getattr__(self, name):
        return getattr(self.inner, name)


class WithholdingPlatform:
    """Answer every task except a deterministic subset (partial answers)."""

    def __init__(self, inner, withhold_every=3):
        self.inner = inner
        self.withheld_ids = []
        self.posted_ids = []
        self._withhold_every = withhold_every
        self._counter = 0

    def post_batch(self, tasks):
        answers = self.inner.post_batch(tasks)
        delivered = {}
        for task in tasks:
            self.posted_ids.append(task.task_id)
            self._counter += 1
            if self._counter % self._withhold_every == 0:
                self.withheld_ids.append(task.task_id)
                continue
            if task in answers:
                delivered[task] = answers[task]
        return delivered

    def __getattr__(self, name):
        return getattr(self.inner, name)


class KillSwitch:
    """Raise ``KeyboardInterrupt`` after N successful batch posts."""

    def __init__(self, inner, after):
        self.inner = inner
        self.after = after
        self.successes = 0

    def post_batch(self, tasks):
        if self.successes >= self.after:
            raise KeyboardInterrupt("simulated crash")
        answers = self.inner.post_batch(tasks)
        self.successes += 1
        return answers

    def state_dict(self):
        return self.inner.state_dict()

    def load_state_dict(self, state):
        self.inner.load_state_dict(state)

    def __getattr__(self, name):
        return getattr(self.inner, name)


def assert_budget_accounting(result, config):
    """Budget is charged for answered tasks only, exactly."""
    assert result.tasks_answered == sum(r.tasks_answered for r in result.history)
    assert result.tasks_posted == sum(r.tasks_posted for r in result.history)
    assert result.tasks_answered <= config.budget
    for record in result.history:
        unanswered = record.faults.get("unanswered", 0)
        expired = record.faults.get("expired", 0)
        assert record.tasks_answered + unanswered + expired == record.tasks_posted


class TestTransientRetries:
    def test_single_transient_is_retried_and_recovers(self, nba_small):
        config = BayesCrowdConfig(
            budget=10, latency=3, max_retries=2, backoff_base=0.0, seed=0
        )
        baseline = BayesCrowd(nba_small, config).run()

        query = BayesCrowd(nba_small, config)
        query.platform = FlakyPlatform(
            query.platform, {1: PlatformTransientError("hiccup")}
        )
        result = query.run()
        assert result.history[0].retries == 1
        assert result.history[0].faults["transient_retries"] == 1
        assert not result.degraded
        assert result.answers == baseline.answers

    def test_retries_exhausted_fails_round_not_run(self, nba_small):
        config = BayesCrowdConfig(
            budget=10, latency=3, max_retries=1, backoff_base=0.0, seed=0
        )
        query = BayesCrowd(nba_small, config)
        always_down = {n: PlatformTransientError("down") for n in range(1, 50)}
        query.platform = FlakyPlatform(query.platform, always_down)
        result = query.run()  # must not raise
        assert result.degraded
        assert result.tasks_answered == 0
        assert result.fault_counts["failed_round"] == result.rounds
        assert result.rounds == config.latency  # latency still bounds the loop

    def test_fatal_error_degrades_gracefully(self, nba_small):
        config = BayesCrowdConfig(budget=10, latency=4, backoff_base=0.0, seed=0)
        query = BayesCrowd(nba_small, config)
        query.platform = FlakyPlatform(query.platform, {2: PlatformFatalError("gone")})
        result = query.run()  # must not raise
        assert result.degraded
        assert result.fault_counts["fatal"] == 1
        assert result.rounds >= 1  # round 1 succeeded before the outage
        assert result.history[0].tasks_answered > 0


class TestRequeuePolicies:
    def test_requeue_reposts_unanswered_tasks(self, nba_small):
        config = BayesCrowdConfig(
            budget=12, latency=4, requeue_policy="requeue", seed=1
        )
        query = BayesCrowd(nba_small, config)
        platform = WithholdingPlatform(query.platform)
        query.platform = platform
        result = query.run()
        assert result.degraded
        assert result.fault_counts["unanswered"] > 0
        reposted = [
            task_id
            for task_id in platform.withheld_ids
            if platform.posted_ids.count(task_id) > 1
        ]
        assert reposted, "requeue policy should post unanswered tasks again"

    def test_refund_abandons_unanswered_tasks(self, nba_small):
        config = BayesCrowdConfig(
            budget=12, latency=4, requeue_policy="refund", seed=1
        )
        query = BayesCrowd(nba_small, config)
        platform = WithholdingPlatform(query.platform)
        query.platform = platform
        result = query.run()
        assert result.degraded
        for task_id in platform.withheld_ids:
            assert platform.posted_ids.count(task_id) == 1
        assert_budget_accounting(result, config)


class TestChaosAcceptance:
    """The ISSUE acceptance scenario: drop 0.3, spam 0.2, transient every 2."""

    def test_chaos_run_completes_and_accounts_budget(self, nba_small):
        config = chaos_config()
        result = BayesCrowd(nba_small, config).run()  # must not raise
        assert result.degraded
        assert result.fault_counts  # aggregated fault totals present
        assert result.fault_counts.get("unanswered", 0) > 0
        assert result.fault_counts.get("transient_retries", 0) > 0
        assert any(r.faults for r in result.history)  # per-round accounting
        assert_budget_accounting(result, config)

    def test_chaos_run_is_reproducible(self, nba_small):
        first = BayesCrowd(nba_small, chaos_config()).run()
        second = BayesCrowd(nba_small, chaos_config()).run()
        assert first.answers == second.answers
        assert first.tasks_answered == second.tasks_answered
        assert first.fault_counts == second.fault_counts

    def test_kill_and_resume_matches_uninterrupted_run(self, nba_small, tmp_path):
        # Reference: one uninterrupted chaos run.
        reference = BayesCrowd(nba_small, chaos_config()).run()

        # Same query, killed after two successful rounds.
        checkpoint = tmp_path / "chaos.ckpt.json"
        killed = BayesCrowd(nba_small, chaos_config())
        killed.platform = KillSwitch(killed.platform, after=2)
        with pytest.raises(KeyboardInterrupt):
            killed.run(checkpoint_path=checkpoint)
        assert checkpoint.exists()

        # A fresh process resumes from the checkpoint...
        resumed = BayesCrowd(nba_small, chaos_config()).run(
            checkpoint_path=checkpoint, resume=True
        )
        assert resumed.resumed
        # ...and converges to the same final state as the reference run.
        assert resumed.answers == reference.answers
        assert resumed.certain_answers == reference.certain_answers
        assert resumed.tasks_answered == reference.tasks_answered
        assert resumed.rounds == reference.rounds
        assert resumed.fault_counts == reference.fault_counts
        assert_budget_accounting(resumed, chaos_config())

    def test_resume_without_checkpoint_file_starts_fresh(self, nba_small, tmp_path):
        config = chaos_config()
        result = BayesCrowd(nba_small, config).run(
            checkpoint_path=tmp_path / "missing.json", resume=True
        )
        assert not result.resumed
        assert result.rounds > 0

    def test_checkpoint_of_other_query_is_rejected(self, nba_small, tmp_path):
        checkpoint = tmp_path / "other.json"
        BayesCrowd(nba_small, chaos_config(seed=11)).run(checkpoint_path=checkpoint)
        other = BayesCrowd(nba_small, chaos_config(seed=12))
        with pytest.raises(CheckpointError):
            other.run(checkpoint_path=checkpoint, resume=True)


class TestFrameworkWiring:
    def test_faults_config_wraps_platform(self, nba_small):
        config = BayesCrowdConfig(faults=FaultModel(drop_rate=0.5), seed=0)
        query = BayesCrowd(nba_small, config)
        assert isinstance(query.platform, UnreliableCrowdPlatform)
        assert isinstance(query.platform.inner, SimulatedCrowdPlatform)

    def test_quiet_fault_model_is_not_wrapped(self, nba_small):
        config = BayesCrowdConfig(faults=FaultModel(), seed=0)
        query = BayesCrowd(nba_small, config)
        assert isinstance(query.platform, SimulatedCrowdPlatform)

    def test_clean_run_reports_full_answers(self, nba_small):
        config = BayesCrowdConfig(budget=10, latency=3, seed=0)
        result = BayesCrowd(nba_small, config).run()
        assert not result.degraded
        assert result.fault_counts == {}
        assert result.tasks_answered == result.tasks_posted
