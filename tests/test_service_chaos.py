"""Chaos tests: SIGKILL the server mid-round, restart, bit-identity.

The service-level crash contract extends the engine's write-ahead
guarantee to the network layer: a server killed with SIGKILL at an
arbitrary instant -- two sessions mid-round, store writes in flight --
restarts over the same data directory, re-opens every interrupted
session from journal + checkpoint, and finishes each with a QueryResult
**bit-identical** to an uninterrupted in-process run of the same
dataset/config/seed.

Also here: the batch CLI's SIGTERM path (cooperative cancellation ->
exit 3 -> resumable with ``--resume``), because both tests need real
subprocesses and real signals.
"""

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core import BayesCrowd, BayesCrowdConfig
from repro.persistence import load_dataset, result_to_dict
from repro.service.store import TERMINAL_STATES

SRC = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")

#: the two concurrent sessions the chaos run hosts (distinct seeds ->
#: distinct task streams; both must recover independently).  The noisy
#: crowd + strict integrity keep the run in its round loop for seconds,
#: so the SIGKILL reliably lands mid-round with a journal in flight.
SESSIONS = {
    "chaos-a": {"budget": 100, "latency": 300, "seed": 11,
                "worker_accuracy": 0.7, "strict_integrity": True, "alpha": 0.1},
    "chaos-b": {"budget": 80, "latency": 300, "seed": 23,
                "worker_accuracy": 0.75, "strict_integrity": True, "alpha": 0.1},
}
DATASET = {"kind": "synthetic", "dataset_id": "chaos", "n": 100,
           "missing_rate": 0.4, "seed": 11}


def _env():
    env = dict(os.environ)
    env["PYTHONPATH"] = SRC + os.pathsep + env.get("PYTHONPATH", "")
    return env


class ServerProcess:
    """A real ``repro serve`` subprocess with stdout capture."""

    def __init__(self, data_dir, extra_args=()):
        self.proc = subprocess.Popen(
            [sys.executable, "-m", "repro", "serve", "--port", "0",
             "--data-dir", str(data_dir), *extra_args],
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
            env=_env(),
        )
        self.lines = []
        self._reader = threading.Thread(target=self._pump, daemon=True)
        self._reader.start()
        self.port = self._await_port()

    def _pump(self):
        for line in self.proc.stdout:
            self.lines.append(line.rstrip("\n"))

    def _await_port(self, timeout=60.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            for line in list(self.lines):
                if "listening on http://" in line:
                    return int(line.rsplit(":", 1)[1].split()[0])
            if self.proc.poll() is not None:
                raise RuntimeError(
                    "server died at startup:\n" + "\n".join(self.lines)
                )
            time.sleep(0.02)
        raise RuntimeError("server never announced its port")

    # ------------------------------------------------------------------
    def request(self, method, path, payload=None, timeout=60):
        url = "http://127.0.0.1:%d%s" % (self.port, path)
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(url, data=data, method=method)
        if data is not None:
            request.add_header("Content-Type", "application/json")
        try:
            with urllib.request.urlopen(request, timeout=timeout) as response:
                return response.status, json.loads(response.read() or b"null")
        except urllib.error.HTTPError as err:
            return err.code, json.loads(err.read() or b"null")

    def request_text(self, path, timeout=60):
        url = "http://127.0.0.1:%d%s" % (self.port, path)
        with urllib.request.urlopen(url, timeout=timeout) as response:
            return response.read().decode()

    def sigkill(self):
        self.proc.kill()
        self.proc.wait(timeout=60)

    def terminate(self):
        if self.proc.poll() is None:
            self.proc.terminate()
            try:
                self.proc.wait(timeout=60)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(timeout=60)


def _norm_result_dict(data):
    """The crash-invariant observables of a result_to_dict payload."""
    out = {
        key: value
        for key, value in data.items()
        if key not in ("seconds", "modeling_seconds", "resumed")
    }
    out["history"] = [
        {k: v for k, v in entry.items() if k != "seconds"}
        for entry in data.get("history", [])
    ]
    return json.loads(json.dumps(out, sort_keys=True))


@pytest.mark.slow
class TestServerSigkillRecovery:
    def test_two_sessions_survive_sigkill_bit_identically(self, tmp_path):
        data_dir = tmp_path / "store"
        server = ServerProcess(data_dir)
        try:
            status, _ = server.request("POST", "/v1/datasets", DATASET)
            assert status == 201
            for session_id, config in SESSIONS.items():
                status, _ = server.request(
                    "POST", "/v1/sessions",
                    {"dataset_id": "chaos", "session_id": session_id,
                     "config": config},
                )
                assert status == 202
            # Let both sessions get well into their rounds, then yank
            # the power cord.  No drain, no flush, no goodbye.
            time.sleep(1.2)
        finally:
            server.sigkill()

        # The kill really interrupted them (otherwise this test proves
        # nothing): their durable state must be non-terminal.
        interrupted = []
        for session_id in SESSIONS:
            meta = json.loads(
                (data_dir / "sessions" / ("%s.meta.json" % session_id)).read_text()
            )
            interrupted.append(meta["state"] not in TERMINAL_STATES)
        assert any(interrupted), "server finished before the SIGKILL landed"

        # Restart over the same store: recovery re-opens both sessions
        # and runs them to completion.
        server = ServerProcess(data_dir)
        try:
            results = {}
            deadline = time.monotonic() + 300
            for session_id in SESSIONS:
                while True:
                    status, view = server.request(
                        "GET", "/v1/sessions/%s" % session_id
                    )
                    assert status == 200
                    if view["state"] in ("DONE", "DEGRADED"):
                        break
                    assert view["state"] != "FAILED", view
                    assert time.monotonic() < deadline, "recovery stalled"
                    time.sleep(0.1)
                status, body = server.request(
                    "GET", "/v1/sessions/%s/result" % session_id
                )
                assert status == 200
                results[session_id] = body["result"]
            metrics = server.request_text("/metrics")
            assert "service_sessions_recovered" in metrics
        finally:
            server.terminate()

        # Bit-identity: an uninterrupted in-process run of the *stored*
        # dataset with the same config must match every observable.
        dataset = load_dataset(data_dir / "datasets" / "chaos.npz")
        for session_id, config in SESSIONS.items():
            baseline = BayesCrowd(dataset, BayesCrowdConfig(**config)).run()
            assert _norm_result_dict(results[session_id]) == _norm_result_dict(
                result_to_dict(baseline)
            ), "session %s diverged after crash recovery" % session_id


@pytest.mark.slow
class TestCliSignals:
    CLI = ["--dataset", "synthetic", "--n", "100", "--missing-rate", "0.4",
           "--budget", "100", "--latency", "300", "--alpha", "0.1",
           "--worker-accuracy", "0.7", "--strict-integrity", "--seed", "11"]

    def _run(self, args, send_signal=None, journal=None, timeout=300):
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro", *args],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE,
            text=True, env=_env(),
        )
        if send_signal is not None:
            # Wait for the pre-run banner (printed once handlers are
            # armed), then for the journal to record real progress --
            # the "open" record plus at least one round/answer -- so
            # the signal provably lands mid-query with resumable state
            # on disk, however slowly the preprocessing ran.
            line = proc.stdout.readline()
            assert line.startswith("dataset "), line
            deadline = time.monotonic() + 120
            while True:
                try:
                    with open(journal) as handle:
                        if sum(1 for _ in handle) >= 2:
                            break
                except OSError:
                    pass
                assert proc.poll() is None, "run finished before the signal"
                assert time.monotonic() < deadline, "journal never progressed"
                time.sleep(0.02)
            proc.send_signal(send_signal)
        out, err = proc.communicate(timeout=timeout)
        return proc.returncode, out, err

    @pytest.mark.parametrize("signum", [signal.SIGTERM, signal.SIGINT])
    def test_signal_exits_3_and_resumes(self, tmp_path, signum):
        journal = str(tmp_path / "run.journal.jsonl")
        checkpoint = str(tmp_path / "run.ckpt.json")
        args = self.CLI + ["--journal", journal, "--checkpoint", checkpoint]

        code, out, err = self._run(args, send_signal=signum, journal=journal)
        assert code == 3, (code, out, err)
        assert "re-run with --resume" in err
        assert os.path.exists(journal), "no resumable state left behind"

        # The parked run resumes to completion...
        code, out, err = self._run(args + ["--resume"])
        assert code == 0, (code, out, err)
        assert "resumed from" in out
        resumed_tail = [
            line for line in out.splitlines()
            if line.startswith(("machine-only", "answers:"))
        ]

        # ...and lands exactly where an uninterrupted run lands.
        code, out, err = self._run(self.CLI)
        assert code == 0
        straight_tail = [
            line for line in out.splitlines()
            if line.startswith(("machine-only", "answers:"))
        ]
        assert resumed_tail == straight_tail
