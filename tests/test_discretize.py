"""Tests for domain discretization."""

import numpy as np
import pytest

from repro.bayesnet import Discretizer, discretize
from repro.bayesnet.discretize import equal_frequency_edges, equal_width_edges


class TestEdges:
    def test_equal_width(self):
        column = np.array([0.0, 10.0])
        edges = equal_width_edges(column, 2)
        assert edges == pytest.approx([5.0])

    def test_equal_width_constant_column(self):
        assert equal_width_edges(np.array([3.0, 3.0]), 4).size == 0

    def test_equal_frequency_balances_counts(self):
        column = np.arange(100, dtype=float)
        edges = equal_frequency_edges(column, 4)
        assert len(edges) == 3
        levels = np.searchsorted(edges, column, side="right")
        counts = np.bincount(levels)
        assert counts.min() >= 20

    def test_equal_frequency_collapses_ties(self):
        column = np.array([1.0] * 50 + [2.0] * 50)
        edges = equal_frequency_edges(column, 8)
        assert len(edges) <= 2

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            equal_width_edges(np.array([1.0]), 0)
        with pytest.raises(ValueError):
            equal_frequency_edges(np.array([1.0]), 0)


class TestDiscretizer:
    def test_transform_monotone(self, rng):
        matrix = rng.normal(size=(200, 3))
        levels, __ = discretize(matrix, 5)
        for j in range(3):
            order = np.argsort(matrix[:, j])
            assert (np.diff(levels[order, j]) >= 0).all()

    def test_domain_sizes(self, rng):
        matrix = rng.normal(size=(500, 2))
        disc = Discretizer.fit(matrix, 8)
        assert disc.domain_sizes() == [8, 8]

    def test_levels_in_range(self, rng):
        matrix = rng.normal(size=(100, 2))
        levels, sizes = discretize(matrix, 6)
        for j, size in enumerate(sizes):
            assert levels[:, j].min() >= 0
            assert levels[:, j].max() < size

    def test_strategy_width(self, rng):
        matrix = rng.uniform(size=(100, 1))
        levels, sizes = discretize(matrix, 4, strategy="width")
        assert sizes == [4]

    def test_unknown_strategy(self, rng):
        with pytest.raises(ValueError):
            Discretizer.fit(rng.normal(size=(10, 1)), 2, strategy="magic")

    def test_rejects_1d(self, rng):
        with pytest.raises(ValueError):
            Discretizer.fit(rng.normal(size=10), 2)

    def test_transform_new_data(self, rng):
        train = rng.normal(size=(300, 2))
        disc = Discretizer.fit(train, 4)
        test = rng.normal(size=(50, 2))
        levels = disc.transform(test)
        assert levels.shape == (50, 2)
        assert levels.max() < 4
