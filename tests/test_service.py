"""The resilient query service: HTTP layer, store, admission, drain.

Everything here runs against a real listening server (OS-assigned port)
in a background thread, or against the components directly -- no mocks
of the transport.  The chaos-grade SIGKILL/restart matrix lives in
``test_service_chaos.py``; this file covers the request/response
surface, admission control and backpressure, the durable store, the
storage fault-injection harness, and graceful drain + same-store
restart recovery.
"""

import asyncio
import http.client
import json
import socket
import threading
import time

import pytest

from repro.errors import ConfigError
from repro.persistence import atomic_write, expression_to_json
from repro.service import (
    DurableAnswerLog,
    HTTPError,
    QueryServer,
    ServiceSettings,
    ServiceStore,
    StoreFaultInjector,
    abrupt_close_probe,
    slow_loris_probe,
)
from repro.service.http import read_request
from repro.service.store import valid_identifier


# ----------------------------------------------------------------------
# harness
# ----------------------------------------------------------------------
class ServerHandle:
    """A live server in a daemon thread + a tiny JSON client."""

    def __init__(self, settings: ServiceSettings) -> None:
        self.settings = settings
        self.server = None
        self.exit_code = None
        self._thread = threading.Thread(target=self._run, daemon=True)
        self._thread.start()
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            if self.server is not None and self.server.bound_port is not None:
                return
            time.sleep(0.01)
        raise RuntimeError("server did not start")

    def _run(self) -> None:
        async def main():
            self.server = QueryServer(self.settings)
            self.exit_code = await self.server.serve_until_stopped()

        asyncio.run(main())

    @property
    def port(self) -> int:
        return self.server.bound_port

    def stop(self, reason: str = "test", timeout: float = 60.0):
        self.server.request_stop_threadsafe(reason)
        self._thread.join(timeout=timeout)
        assert not self._thread.is_alive(), "server did not stop"
        return self.exit_code

    # ------------------------------------------------------------------
    def request(self, method, path, payload=None, raw_body=None, headers=None):
        conn = http.client.HTTPConnection("127.0.0.1", self.port, timeout=60)
        body = raw_body
        send_headers = dict(headers or {})
        if payload is not None:
            body = json.dumps(payload)
            send_headers.setdefault("Content-Type", "application/json")
        conn.request(method, path, body=body, headers=send_headers)
        response = conn.getresponse()
        data = response.read()
        out_headers = dict(response.getheaders())
        conn.close()
        parsed = None
        if data and out_headers.get("Content-Type", "").startswith("application/json"):
            parsed = json.loads(data)
        return response.status, parsed, out_headers, data

    def wait_state(self, session_id, states, timeout=120.0):
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            status, view, _, _ = self.request("GET", "/v1/sessions/%s" % session_id)
            assert status == 200
            if view["state"] in states:
                return view
            time.sleep(0.05)
        raise AssertionError(
            "session %s never reached %r (last: %r)" % (session_id, states, view)
        )


def _settings(tmp_path, **overrides) -> ServiceSettings:
    defaults = dict(
        port=0,
        data_dir=tmp_path / "data",
        journal_fsync=False,
        retry_after_s=2.0,
    )
    defaults.update(overrides)
    return ServiceSettings(**defaults)


@pytest.fixture
def server(tmp_path):
    handle = ServerHandle(_settings(tmp_path))
    yield handle
    if handle._thread.is_alive():
        handle.stop()


def _make_dataset(handle, dataset_id="d1", n=50, seed=3):
    status, meta, _, _ = handle.request(
        "POST",
        "/v1/datasets",
        {"kind": "synthetic", "n": n, "seed": seed, "dataset_id": dataset_id},
    )
    assert status == 201, meta
    return meta


_QUEUED_DATASET = {
    # No "complete" matrix -> no ground truth -> nothing to simulate:
    # sessions over it must use the queued platform.
    "kind": "inline",
    "dataset_id": "dq",
    "values": [[2, 1], [1, 2], [-1, 1], [1, -1]],
    "domain_sizes": [4, 4],
}


# ----------------------------------------------------------------------
# settings
# ----------------------------------------------------------------------
class TestSettings:
    def test_from_env_parses_types(self, tmp_path):
        settings = ServiceSettings.from_env(
            environ={
                "REPRO_SERVICE_PORT": "0",
                "REPRO_SERVICE_MAX_SESSIONS": "3",
                "REPRO_SERVICE_RETRY_AFTER_S": "2.5",
                "REPRO_SERVICE_JOURNAL_FSYNC": "no",
                "REPRO_SERVICE_RECOVER_ON_START": "true",
                "REPRO_SERVICE_DATA_DIR": str(tmp_path),
                "IGNORED_OTHER": "x",
            }
        )
        assert settings.port == 0
        assert settings.max_sessions == 3
        assert settings.retry_after_s == 2.5
        assert settings.journal_fsync is False
        assert settings.recover_on_start is True

    def test_overrides_beat_env(self, tmp_path):
        settings = ServiceSettings.from_env(
            environ={"REPRO_SERVICE_MAX_SESSIONS": "3"},
            max_sessions=5,
            port=0,
            data_dir=tmp_path,
        )
        assert settings.max_sessions == 5

    @pytest.mark.parametrize(
        "bad",
        [
            {"port": 70000},
            {"max_sessions": 0},
            {"overflow_policy": "drop-table"},
            {"header_timeout_s": 0},
            {"max_header_bytes": 10},
            {"retry_after_s": -1},
        ],
    )
    def test_bad_knobs_fail_at_config_time(self, tmp_path, bad):
        with pytest.raises(ConfigError):
            ServiceSettings(data_dir=tmp_path, **bad)

    def test_bad_env_value_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError):
            ServiceSettings.from_env(
                environ={"REPRO_SERVICE_PORT": "not-a-port"}, data_dir=tmp_path
            )


# ----------------------------------------------------------------------
# HTTP parsing (no socket: a hand-fed StreamReader)
# ----------------------------------------------------------------------
def _parse(raw: bytes, **limits):
    async def run():
        reader = asyncio.StreamReader()
        reader.feed_data(raw)
        reader.feed_eof()
        kwargs = dict(
            max_header_bytes=1024,
            max_body_bytes=1024,
            header_timeout_s=5.0,
            body_timeout_s=5.0,
        )
        kwargs.update(limits)
        return await read_request(reader, **kwargs)

    return asyncio.run(run())


class TestHTTPParsing:
    def test_simple_get(self):
        request = _parse(b"GET /v1/sessions?follow=1 HTTP/1.1\r\nHost: x\r\n\r\n")
        assert request.method == "GET"
        assert request.path == "/v1/sessions"
        assert request.query == {"follow": "1"}
        assert request.wants_keep_alive

    def test_post_with_body(self):
        body = b'{"a": 1}'
        raw = (
            b"POST /v1/datasets HTTP/1.1\r\nContent-Length: %d\r\n"
            b"Connection: close\r\n\r\n%s" % (len(body), body)
        )
        request = _parse(raw)
        assert request.json() == {"a": 1}
        assert not request.wants_keep_alive

    def test_clean_eof_is_none(self):
        assert _parse(b"") is None

    def test_oversized_header_is_431(self):
        raw = b"GET / HTTP/1.1\r\nX-Big: " + b"y" * 4096 + b"\r\n\r\n"
        with pytest.raises(HTTPError) as err:
            _parse(raw)
        assert err.value.status == 431

    def test_oversized_declared_body_is_413(self):
        raw = b"POST / HTTP/1.1\r\nContent-Length: 999999\r\n\r\n"
        with pytest.raises(HTTPError) as err:
            _parse(raw)
        assert err.value.status == 413

    def test_unknown_method_is_405(self):
        with pytest.raises(HTTPError) as err:
            _parse(b"BREW /pot HTTP/1.1\r\n\r\n")
        assert err.value.status == 405

    def test_chunked_body_is_411(self):
        with pytest.raises(HTTPError) as err:
            _parse(b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n")
        assert err.value.status == 411

    def test_truncated_request_is_400(self):
        with pytest.raises(HTTPError) as err:
            _parse(b"GET / HTTP/1.1\r\nHost")
        assert err.value.status == 400


# ----------------------------------------------------------------------
# store + durability harness (satellite: durability audit)
# ----------------------------------------------------------------------
class TestStore:
    @pytest.mark.parametrize("bad", ["", "../evil", ".hidden", "a/b", "x" * 80, 7])
    def test_invalid_identifiers_rejected(self, bad):
        with pytest.raises(HTTPError) as err:
            valid_identifier(bad)
        assert err.value.status == 400

    def test_duplicate_dataset_conflicts(self, tmp_path, nba_small):
        store = ServiceStore(tmp_path)
        store.save_dataset("d", nba_small, {})
        with pytest.raises(HTTPError) as err:
            store.save_dataset("d", nba_small, {})
        assert err.value.status == 409

    def test_recoverable_is_exactly_non_terminal(self, tmp_path):
        store = ServiceStore(tmp_path)
        for sid, state in [
            ("a", "PENDING"), ("b", "RUNNING"), ("c", "PAUSED"),
            ("d", "DONE"), ("e", "FAILED"), ("f", "CANCELLED"),
        ]:
            store.create_session(sid, {"state": state})
        assert sorted(m["session_id"] for m in store.recoverable_sessions()) == [
            "a", "b", "c",
        ]

    def test_answer_log_drops_torn_tail(self, tmp_path):
        log = DurableAnswerLog(tmp_path / "a.jsonl", fsync=False)
        from repro.ctable.expression import Var, Expression

        expr = expression_to_json(Expression(Var(0, 0), Var(1, 0)))
        log.append(expr, ">")
        log.append(expr, "<")
        with open(log.path, "a") as handle:
            handle.write('{"expression": {"tru')  # crash mid-append
        records = log.load()
        assert [r["relation"] for r in records] == [">", "<"]


class TestStorageFaults:
    def _write(self, path, text):
        atomic_write(path, lambda handle: handle.write(text))

    @pytest.mark.parametrize("mode", ["disk_full", "torn"])
    def test_no_partial_file_ever_observable(self, tmp_path, mode):
        target = tmp_path / "state.json"
        self._write(target, "old-and-complete")
        with StoreFaultInjector(mode=mode, times=1) as faults:
            with pytest.raises(OSError):
                self._write(target, "new-but-doomed")
        assert faults.fired == 1
        # The atomicity contract: old content intact, no temp droppings.
        assert target.read_text() == "old-and-complete"
        assert [p.name for p in tmp_path.iterdir()] == ["state.json"]
        # The disk "recovers": the very next write goes through whole.
        self._write(target, "new-and-complete")
        assert target.read_text() == "new-and-complete"

    def test_fresh_file_absent_after_fault(self, tmp_path):
        target = tmp_path / "fresh.json"
        with StoreFaultInjector(mode="torn", times=1):
            with pytest.raises(OSError):
                self._write(target, "never-lands")
        assert not target.exists()
        assert list(tmp_path.iterdir()) == []

    def test_match_filter_scopes_injection(self, tmp_path):
        with StoreFaultInjector(mode="disk_full", times=5, match="victim"):
            self._write(tmp_path / "innocent.json", "fine")
            with pytest.raises(OSError):
                self._write(tmp_path / "victim.json", "doomed")
        assert (tmp_path / "innocent.json").read_text() == "fine"

    def test_store_survives_disk_full_on_meta(self, tmp_path):
        store = ServiceStore(tmp_path)
        store.create_session("s1", {"state": "PENDING"})
        with StoreFaultInjector(mode="disk_full", times=1, match="s1.meta"):
            with pytest.raises(OSError):
                store.update_session("s1", state="RUNNING")
        # The record is whole and unchanged -- recovery still sees it.
        assert store.session_meta("s1")["state"] == "PENDING"


# ----------------------------------------------------------------------
# the live server: happy paths
# ----------------------------------------------------------------------
class TestServerBasics:
    def test_health_ready_and_unknown_routes(self, server):
        status, body, _, _ = server.request("GET", "/healthz")
        assert status == 200 and body["status"] == "ok"
        status, body, _, _ = server.request("GET", "/readyz")
        assert status == 200 and body["status"] == "ready"
        status, body, _, _ = server.request("GET", "/no/such/route")
        assert status == 404
        status, body, _, _ = server.request("DELETE", "/healthz")
        assert status == 405

    def test_bad_json_body_is_400(self, server):
        status, body, _, _ = server.request(
            "POST", "/v1/datasets", raw_body="{not json",
            headers={"Content-Type": "application/json"},
        )
        assert status == 400
        assert "JSON" in body["error"]

    def test_dataset_lifecycle(self, server):
        meta = _make_dataset(server, "d1", n=40)
        assert meta["has_ground_truth"] is True
        status, listing, _, _ = server.request("GET", "/v1/datasets")
        assert [d["dataset_id"] for d in listing["datasets"]] == ["d1"]
        status, _, _, _ = server.request(
            "POST", "/v1/datasets", {"kind": "synthetic", "dataset_id": "d1"}
        )
        assert status == 409
        status, body, _, _ = server.request("GET", "/v1/datasets/none")
        assert status == 404

    def test_session_runs_to_done_with_result_events_metrics(self, server):
        _make_dataset(server, "d1", n=40)
        status, meta, _, _ = server.request(
            "POST",
            "/v1/sessions",
            {"dataset_id": "d1", "session_id": "s1",
             "config": {"budget": 8, "latency": 3, "seed": 3}},
        )
        assert status == 202 and meta["state"] == "PENDING"
        view = server.wait_state("s1", ("DONE", "DEGRADED"))
        assert view["restarts"] == 0
        status, body, _, _ = server.request("GET", "/v1/sessions/s1/result")
        assert status == 200
        assert body["result"]["answers"] is not None
        # the EventLog JSONL stream is the wire format: every line parses
        status, _, headers, raw = server.request("GET", "/v1/sessions/s1/events")
        assert status == 200
        assert "ndjson" in headers.get("Content-Type", "")
        events = [json.loads(line) for line in raw.decode().splitlines()]
        assert any(e.get("event") or e.get("kind") for e in events)
        # session metrics snapshot exists once the run finished
        status, snapshot, _, _ = server.request("GET", "/v1/sessions/s1/metrics")
        assert status == 200
        # Prometheus exposition includes supervisor state counts
        status, _, headers, raw = server.request("GET", "/metrics")
        assert status == 200 and "text/plain" in headers["Content-Type"]
        text = raw.decode()
        assert "service_sessions_done" in text
        assert "service_requests" in text

    def test_open_session_on_unknown_dataset_is_404(self, server):
        status, _, _, _ = server.request(
            "POST", "/v1/sessions", {"dataset_id": "ghost"}
        )
        assert status == 404

    def test_bad_session_config_is_400(self, server):
        _make_dataset(server, "d1", n=40)
        status, body, _, _ = server.request(
            "POST",
            "/v1/sessions",
            {"dataset_id": "d1", "config": {"budget": -5}},
        )
        assert status == 400
        status, body, _, _ = server.request(
            "POST",
            "/v1/sessions",
            {"dataset_id": "d1", "config": {"trace_path": "/tmp/hijack"}},
        )
        assert status == 400
        assert "trace_path" in body["error"]


# ----------------------------------------------------------------------
# admission control & backpressure
# ----------------------------------------------------------------------
class TestAdmissionControl:
    def test_session_slots_full_is_429_with_retry_after(self, tmp_path):
        handle = ServerHandle(_settings(tmp_path, max_sessions=1))
        try:
            _make_dataset(handle, "d1", n=40)
            # Occupy the single slot with a hand-held RUNNING session.
            app = handle.server.app
            from repro.core import BayesCrowdConfig

            blocker = app.supervisor.create(
                "blocker", app.store.load_dataset("d1"), BayesCrowdConfig()
            )
            blocker.state = "RUNNING"
            status, body, headers, _ = handle.request(
                "POST", "/v1/sessions", {"dataset_id": "d1"}
            )
            assert status == 429
            assert int(headers["Retry-After"]) >= 1
            assert "slots" in body["error"]
            blocker.state = "DONE"  # release
            status, _, _, _ = handle.request(
                "POST", "/v1/sessions",
                {"dataset_id": "d1", "session_id": "s-ok",
                 "config": {"budget": 5, "latency": 2}},
            )
            assert status == 202
        finally:
            handle.stop()

    def test_answer_queue_backpressure_is_429(self, tmp_path):
        handle = ServerHandle(
            _settings(tmp_path, max_pending_answers=2, overflow_policy="reject")
        )
        try:
            status, _, _, _ = handle.request("POST", "/v1/datasets", _QUEUED_DATASET)
            assert status == 201
            status, _, _, _ = handle.request(
                "POST",
                "/v1/sessions",
                {"dataset_id": "dq", "session_id": "sq", "platform": "queued",
                 "config": {"budget": 4, "latency": 1, "alpha": 1.0}},
            )
            assert status == 202
            handle.wait_state("sq", ("DONE", "DEGRADED", "FAILED"))
            # The engine is finished: nothing consumes the queue now, so
            # the bound is observable deterministically.
            answer = {
                "expression": {"left": {"var": [0, 0]}, "right": {"var": [1, 0]}},
                "relation": ">",
            }
            status, body, headers, _ = handle.request(
                "POST",
                "/v1/sessions/sq/answers",
                {"answers": [answer, answer, answer]},
            )
            assert status == 429
            assert "Retry-After" in headers
            status, view, _, _ = handle.request("GET", "/v1/sessions/sq")
            assert view["queue_depth"] == 2  # the bound held
        finally:
            handle.stop()

    def test_simulated_session_rejects_queued_answers(self, server):
        _make_dataset(server, "d1", n=40)
        status, _, _, _ = server.request(
            "POST", "/v1/sessions",
            {"dataset_id": "d1", "session_id": "s1",
             "config": {"budget": 5, "latency": 2}},
        )
        assert status == 202
        status, body, _, _ = server.request(
            "POST",
            "/v1/sessions/s1/answers",
            {"answers": [{
                "expression": {"left": {"var": [0, 0]}, "right": {"var": [1, 0]}},
                "relation": ">",
            }]},
        )
        assert status == 409

    def test_queued_dataset_needs_queued_platform(self, server):
        status, _, _, _ = server.request("POST", "/v1/datasets", _QUEUED_DATASET)
        assert status == 201
        status, body, _, _ = server.request(
            "POST", "/v1/sessions", {"dataset_id": "dq"}
        )
        assert status == 409
        assert "ground truth" in body["error"]

    def test_malformed_answer_is_400(self, server):
        status, _, _, _ = server.request("POST", "/v1/datasets", _QUEUED_DATASET)
        assert status == 201
        status, _, _, _ = server.request(
            "POST",
            "/v1/sessions",
            {"dataset_id": "dq", "session_id": "sq", "platform": "queued",
             "config": {"budget": 4, "latency": 1, "alpha": 1.0}},
        )
        assert status == 202
        status, body, _, _ = server.request(
            "POST",
            "/v1/sessions/sq/answers",
            {"answers": [{"expression": {"left": {}}, "relation": "maybe"}]},
        )
        assert status == 400

    def test_connection_cap_gets_503(self, tmp_path):
        handle = ServerHandle(
            _settings(tmp_path, max_connections=1, header_timeout_s=20.0)
        )
        try:
            # Occupy the single slot with an idle keep-alive connection.
            squatter = socket.create_connection(("127.0.0.1", handle.port))
            time.sleep(0.1)
            with socket.create_connection(("127.0.0.1", handle.port)) as sock:
                sock.sendall(b"GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n")
                sock.settimeout(10)
                data = sock.recv(4096)
            assert b"503" in data.split(b"\r\n", 1)[0]
            assert b"Retry-After" in data
            squatter.close()
        finally:
            handle.stop()


# ----------------------------------------------------------------------
# transport faults
# ----------------------------------------------------------------------
class TestTransportFaults:
    def test_slow_loris_is_reaped_with_408(self, tmp_path):
        handle = ServerHandle(_settings(tmp_path, header_timeout_s=0.5))
        try:
            start = time.monotonic()
            received = slow_loris_probe(
                "127.0.0.1", handle.port, duration_s=10.0, interval_s=0.1
            )
            elapsed = time.monotonic() - start
            # reaped by the timeout, not by the attacker giving up
            assert elapsed < 8.0
            assert received == b"" or b"408" in received
            status, _, _, _ = handle.request("GET", "/healthz")
            assert status == 200
        finally:
            handle.stop()

    def test_abruptly_closed_connection_is_absorbed(self, server):
        abrupt_close_probe("127.0.0.1", server.port)
        time.sleep(0.1)
        status, _, _, _ = server.request("GET", "/healthz")
        assert status == 200

    def test_client_vanishing_mid_stream_is_absorbed(self, server):
        _make_dataset(server, "d1", n=40)
        status, _, _, _ = server.request(
            "POST", "/v1/sessions",
            {"dataset_id": "d1", "session_id": "s1",
             "config": {"budget": 5, "latency": 2}},
        )
        assert status == 202
        with socket.create_connection(("127.0.0.1", server.port)) as sock:
            sock.sendall(
                b"GET /v1/sessions/s1/events?follow=1 HTTP/1.1\r\nHost: x\r\n\r\n"
            )
            sock.recv(64)  # the head arrived; now vanish mid-stream
        server.wait_state("s1", ("DONE", "DEGRADED"))
        status, _, _, _ = server.request("GET", "/healthz")
        assert status == 200


# ----------------------------------------------------------------------
# drain + restart recovery (same store, new process-equivalent)
# ----------------------------------------------------------------------
class TestDrainAndRecovery:
    def test_drain_refuses_new_work_and_parks_sessions(self, tmp_path):
        handle = ServerHandle(_settings(tmp_path))
        data_dir = handle.settings.data_dir
        try:
            _make_dataset(handle, "d1", n=300, seed=11)
            status, _, _, _ = handle.request(
                "POST",
                "/v1/sessions",
                {"dataset_id": "d1", "session_id": "s1",
                 "config": {"budget": 120, "latency": 40, "seed": 11}},
            )
            assert status == 202
            time.sleep(0.3)  # let it get into a round
            exit_code = handle.stop("SIGTERM")
            assert exit_code == 0  # parked within the drain budget
        finally:
            if handle._thread.is_alive():
                handle.stop()

        # The store remembers the interrupted session...
        store = ServiceStore(data_dir)
        meta = store.session_meta("s1")
        assert meta["state"] in ("PAUSED", "PENDING", "RUNNING", "DONE")

        # ...and a restart over the same store resumes it to completion.
        restarted = ServerHandle(ServiceSettings(
            port=0, data_dir=data_dir, journal_fsync=False
        ))
        try:
            view = restarted.wait_state("s1", ("DONE", "DEGRADED"))
            assert view["state"] == "DONE"
            status, body, _, _ = restarted.request("GET", "/v1/sessions/s1/result")
            assert status == 200
            assert body["result"]["answers"] is not None
        finally:
            restarted.stop()

    def test_draining_server_rejects_with_503(self, tmp_path):
        handle = ServerHandle(_settings(tmp_path))
        try:
            _make_dataset(handle, "d1", n=40)
            handle.server.app.begin_drain("test")
            status, _, headers, _ = handle.request("GET", "/readyz")
            assert status == 503 and "Retry-After" in headers
            status, _, _, _ = handle.request(
                "POST", "/v1/datasets", {"kind": "synthetic", "dataset_id": "d2"}
            )
            assert status == 503
            status, _, _, _ = handle.request(
                "POST", "/v1/sessions", {"dataset_id": "d1"}
            )
            assert status == 503
            # liveness stays green while draining (k8s semantics)
            status, body, _, _ = handle.request("GET", "/healthz")
            assert status == 200 and body["draining"] is True
        finally:
            handle.stop()

    def test_cancel_is_terminal_and_not_recovered(self, tmp_path):
        handle = ServerHandle(_settings(tmp_path))
        data_dir = handle.settings.data_dir
        try:
            status, _, _, _ = handle.request("POST", "/v1/datasets", _QUEUED_DATASET)
            assert status == 201
            status, _, _, _ = handle.request(
                "POST",
                "/v1/sessions",
                {"dataset_id": "dq", "session_id": "sq", "platform": "queued",
                 "config": {"budget": 4, "latency": 1, "alpha": 1.0}},
            )
            assert status == 202
            handle.wait_state("sq", ("DONE", "DEGRADED", "FAILED"))
            status, _, _, _ = handle.request("POST", "/v1/sessions/sq/cancel")
            assert status == 200
        finally:
            handle.stop()
        assert ServiceStore(data_dir).recoverable_sessions() == []
