"""Crash-injection matrix: SIGKILL on journal-append boundaries.

The write-ahead contract says a crash at *any* instant loses nothing
that was journaled: recovery (journal alone, or checkpoint + journal
suffix) replays to the state the crashed process held, and the resumed
run finishes with a QueryResult bit-identical to an uninterrupted one.

These tests spawn a child process whose journal delivers ``SIGKILL`` to
itself after the N-th append (the ``journal_crash_after`` test hook),
then resume in this process and compare every observable field.  The
full boundary sweep ran offline; here a representative sample keeps the
suite fast -- the first appends (open/round_begin), answers inside early
and late rounds, and the final commit.
"""

import json
import os
import signal
import subprocess
import sys

import pytest

from hypothesis import given, settings, strategies as st

from repro import BayesCrowd, BayesCrowdConfig, generate_nba
from repro.session import journal_problems, read_journal

#: Child: run the quarantine/re-ask exercising query until the journal
#: SIGKILLs the process on the requested append boundary.
_CHILD = r'''
import sys
from repro.core import BayesCrowd, BayesCrowdConfig
from repro.datasets import generate_nba

jp, cp, crash_after = sys.argv[1], sys.argv[2], int(sys.argv[3])
dataset = generate_nba(n_objects=20, missing_rate=0.4, seed=3)
config = BayesCrowdConfig(budget=12, latency=4, worker_accuracy=0.7,
                          alpha=0.1, seed=5, strict_integrity=True)
BayesCrowd(dataset, config).run(journal_path=jp, checkpoint_path=cp or None,
                                journal_crash_after=crash_after)
print("NO_CRASH")
'''


def _dataset():
    return generate_nba(n_objects=20, missing_rate=0.4, seed=3)


def _config():
    return BayesCrowdConfig(
        budget=12, latency=4, worker_accuracy=0.7, alpha=0.1, seed=5,
        strict_integrity=True,
    )


def _norm(result):
    """Every crash-invariant observable of a QueryResult.

    Wall-clock (``seconds``), the ``resumed`` flag and engine/journal
    telemetry legitimately differ between a straight-through run and a
    recovered one; everything else must match exactly.
    """
    return dict(
        answers=result.answers,
        certain=result.certain_answers,
        rounds=result.rounds,
        tasks_posted=result.tasks_posted,
        tasks_answered=result.tasks_answered,
        history=[
            (h.round_index, h.tasks_posted, h.tasks_answered, h.newly_decided,
             h.open_conditions, h.retries, h.faults)
            for h in result.history
        ],
        probs=result.answer_probabilities,
        degraded=result.degraded,
        faults=result.fault_counts,
        integrity=result.integrity,
        reliability=result.worker_reliability,
    )


def _crash_child(journal_path, checkpoint_path, crash_after):
    """Run the child to its injected SIGKILL; returns its returncode."""
    env = dict(os.environ)
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", _CHILD,
         str(journal_path), str(checkpoint_path or ""), str(crash_after)],
        capture_output=True, text=True, env=env, timeout=300,
    )
    return proc


@pytest.fixture(scope="module")
def baseline():
    """The uninterrupted run plus its total journal-append count."""
    import tempfile

    with tempfile.TemporaryDirectory() as tmp:
        journal = os.path.join(tmp, "base.journal.jsonl")
        result = BayesCrowd(_dataset(), _config()).run(journal_path=journal)
        records = read_journal(journal)
    return _norm(result), result, records


class TestCrashMatrix:
    # Boundaries chosen to land on the open header, a round_begin, early
    # and late answers, and commits; clamped to the journal's length so
    # a behavior shift in the config cannot index past the end.
    @pytest.mark.parametrize("boundary", [1, 2, 3, 8, 13, 18, 10**9])
    def test_journal_only_recovery_is_bit_identical(
        self, tmp_path, baseline, boundary
    ):
        base_norm, _, records = baseline
        crash_after = min(boundary, len(records))
        journal = tmp_path / "run.journal.jsonl"
        proc = _crash_child(journal, None, crash_after)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert "NO_CRASH" not in proc.stdout

        resumed = BayesCrowd(_dataset(), _config()).run(
            journal_path=journal, resume=True
        )
        # An open-header-only journal (boundary 1) recovers to a fresh
        # run; any later boundary must report the resumption.
        assert resumed.resumed or crash_after == 1
        assert _norm(resumed) == base_norm

    @pytest.mark.parametrize("boundary", [2, 13, 10**9])
    def test_checkpoint_plus_journal_recovery_is_bit_identical(
        self, tmp_path, baseline, boundary
    ):
        base_norm, _, records = baseline
        crash_after = min(boundary, len(records))
        journal = tmp_path / "run.journal.jsonl"
        checkpoint = tmp_path / "run.ckpt.json"
        proc = _crash_child(journal, checkpoint, crash_after)
        assert proc.returncode == -signal.SIGKILL, proc.stderr

        resumed = BayesCrowd(_dataset(), _config()).run(
            journal_path=journal, checkpoint_path=checkpoint, resume=True
        )
        assert resumed.resumed
        assert _norm(resumed) == base_norm

    def test_recovered_journal_still_verifies(self, tmp_path, baseline):
        """After recovery the on-disk journal passes the obs validator."""
        base_norm, _, records = baseline
        journal = tmp_path / "run.journal.jsonl"
        crash_after = min(8, len(records))
        proc = _crash_child(journal, None, crash_after)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        resumed = BayesCrowd(_dataset(), _config()).run(
            journal_path=journal, resume=True
        )
        assert _norm(resumed) == base_norm
        assert journal_problems(journal) == []


class TestMidRoundCheckpointDedupe:
    """Satellite regression: journal replay is idempotent per task id --
    a record the ledger already holds is deduped, applied once and
    charged once, even when checkpoint and journal coverage overlap."""

    @pytest.fixture()
    def crashed_mid_round(self, tmp_path, baseline):
        """Crash on the first *answer* append after the first committed
        round: the checkpoint then covers round 1, the journal suffix
        holds round 2's begin + one answer."""
        _, _, records = baseline
        first_commit = next(
            r.seq for r in records if r.kind == "round_commit"
        )
        crash_after = next(
            r.seq for r in records
            if r.seq > first_commit and r.kind == "answer"
        )
        journal = tmp_path / "run.journal.jsonl"
        checkpoint = tmp_path / "run.ckpt.json"
        proc = _crash_child(journal, checkpoint, crash_after)
        assert proc.returncode == -signal.SIGKILL, proc.stderr
        assert json.loads(checkpoint.read_text())["journal_seq"] == first_commit
        return journal, checkpoint

    def test_mid_round_checkpoint_resume_replays_the_suffix(
        self, baseline, crashed_mid_round
    ):
        base_norm, base_result, _ = baseline
        journal, checkpoint = crashed_mid_round
        resumed = BayesCrowd(_dataset(), _config()).run(
            journal_path=journal, checkpoint_path=checkpoint, resume=True
        )
        counters = resumed.metrics["counters"]
        # The suffix answer was folded in from the journal (charged by
        # replay, not re-posted) and the cut round was finished in place.
        assert counters["journal_replayed_answers"] >= 1
        assert counters["recovered_rounds"] == 1
        assert resumed.tasks_posted == base_result.tasks_posted
        assert _norm(resumed) == base_norm

    def test_overlapping_replay_is_deduped_by_task_id(
        self, baseline, crashed_mid_round
    ):
        """Rewind the checkpoint's journal_seq to the open header: replay
        then re-delivers round 1's answers, which the checkpoint's ledger
        already holds.  Dedupe must skip them (no double apply, no double
        budget charge) and still land on the uninterrupted result."""
        base_norm, base_result, _ = baseline
        journal, checkpoint = crashed_mid_round
        data = json.loads(checkpoint.read_text())
        data["journal_seq"] = 1
        checkpoint.write_text(json.dumps(data))

        resumed = BayesCrowd(_dataset(), _config()).run(
            journal_path=journal, checkpoint_path=checkpoint, resume=True
        )
        counters = resumed.metrics["counters"]
        assert counters["journal_deduped_answers"] >= 1
        assert resumed.tasks_posted == base_result.tasks_posted
        assert _norm(resumed) == base_norm


class TestJournalPrefixProperty:
    """Property: for ANY durable journal prefix, recovery reproduces the
    uninterrupted result.  Equivalent to the SIGKILL matrix (a crash
    after append N leaves exactly the first N records durable) but runs
    in-process, so hypothesis can sweep many boundaries cheaply."""

    @pytest.fixture(scope="class")
    def fast_baseline(self, tmp_path_factory):
        dataset = generate_nba(n_objects=16, missing_rate=0.4, seed=2)
        config = BayesCrowdConfig(
            budget=10, latency=4, worker_accuracy=0.9, alpha=0.1, seed=2
        )
        journal = tmp_path_factory.mktemp("prefix") / "full.journal.jsonl"
        result = BayesCrowd(dataset, config).run(journal_path=journal)
        lines = journal.read_text().splitlines()
        return dataset, config, _norm(result), lines

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_any_prefix_recovers_the_full_result(
        self, fast_baseline, tmp_path_factory, data
    ):
        dataset, config, base_norm, lines = fast_baseline
        prefix_len = data.draw(
            st.integers(min_value=1, max_value=len(lines)), label="prefix"
        )
        torn_tail = data.draw(st.booleans(), label="torn_tail")
        journal = tmp_path_factory.mktemp("case") / "run.journal.jsonl"
        text = "\n".join(lines[:prefix_len]) + "\n"
        if torn_tail:
            text += '{"seq": %d, "kind": "answer", "payl' % (prefix_len + 1)
        journal.write_text(text)

        resumed = BayesCrowd(dataset, config).run(
            journal_path=journal, resume=True
        )
        assert _norm(resumed) == base_norm
