"""Tests for the missing-value posterior service and fallback distributions."""

import numpy as np
import pytest

from repro.bayesnet import (
    CPT,
    BayesianNetwork,
    MissingValuePosteriors,
    dag_from_edges,
    empirical_distributions,
    uniform_distributions,
)
from repro.datasets import MISSING, IncompleteDataset


def two_attr_dataset():
    values = np.array([[1, MISSING], [MISSING, 0], [0, 1]])
    return IncompleteDataset(values=values, domain_sizes=[2, 2])


def chain_network():
    dag = dag_from_edges(2, iter([(0, 1)]))
    cpts = [
        CPT(0, (), np.array([0.3, 0.7])),
        CPT(1, (0,), np.array([[0.9, 0.1], [0.2, 0.8]])),
    ]
    return BayesianNetwork(dag, [2, 2], cpts)


class TestMissingValuePosteriors:
    def test_posterior_uses_object_evidence(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        # Object 0 observes a1=1, misses a2: pmf should be CPT row for a1=1.
        pmf = service.distribution((0, 1))
        assert pmf == pytest.approx([0.2, 0.8])

    def test_posterior_inverts_with_bayes(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        # Object 1 observes a2=0, misses a1: P(a1|a2=0) via Bayes rule.
        pmf = service.distribution((1, 0))
        p_a1_1 = 0.7 * 0.2 / (0.3 * 0.9 + 0.7 * 0.2)
        assert pmf[1] == pytest.approx(p_a1_1)

    def test_rejects_observed_cell(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        with pytest.raises(ValueError):
            service.distribution((2, 0))

    def test_all_distributions_covers_every_variable(self):
        ds = two_attr_dataset()
        service = MissingValuePosteriors(chain_network(), ds)
        dists = service.all_distributions()
        assert set(dists) == set(ds.variables())
        for pmf in dists.values():
            assert pmf.sum() == pytest.approx(1.0)

    def test_cardinality_mismatch_rejected(self):
        ds = IncompleteDataset(
            values=np.array([[MISSING, 0]]), domain_sizes=[3, 2]
        )
        with pytest.raises(ValueError):
            MissingValuePosteriors(chain_network(), ds)

    def test_cache_returns_copies(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        a = service.distribution((0, 1))
        a[0] = 123.0
        b = service.distribution((0, 1))
        assert b[0] != 123.0


class TestFallbackDistributions:
    def test_uniform(self):
        ds = two_attr_dataset()
        dists = uniform_distributions(ds)
        assert set(dists) == set(ds.variables())
        for pmf in dists.values():
            assert np.allclose(pmf, 0.5)

    def test_empirical_uses_column_marginals(self):
        ds = two_attr_dataset()
        dists = empirical_distributions(ds, smoothing=0.0)
        # Column a1 observes values {1, 0}: pmf [0.5, 0.5].
        assert dists[(1, 0)] == pytest.approx([0.5, 0.5])
        # Column a2 observes values {0, 1}: pmf [0.5, 0.5].
        assert dists[(0, 1)] == pytest.approx([0.5, 0.5])

    def test_empirical_smoothing_keeps_support(self):
        values = np.array([[1, MISSING], [1, 0]])
        ds = IncompleteDataset(values=values, domain_sizes=[2, 2])
        dists = empirical_distributions(ds, smoothing=1.0)
        assert (dists[(0, 1)] > 0).all()
