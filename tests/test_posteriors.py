"""Tests for the missing-value posterior service and fallback distributions."""

import numpy as np
import pytest

from repro.bayesnet import (
    CPT,
    BayesianNetwork,
    MissingValuePosteriors,
    dag_from_edges,
    empirical_distributions,
    uniform_distributions,
)
from repro.datasets import MISSING, IncompleteDataset


def two_attr_dataset():
    values = np.array([[1, MISSING], [MISSING, 0], [0, 1]])
    return IncompleteDataset(values=values, domain_sizes=[2, 2])


def chain_network():
    dag = dag_from_edges(2, iter([(0, 1)]))
    cpts = [
        CPT(0, (), np.array([0.3, 0.7])),
        CPT(1, (0,), np.array([[0.9, 0.1], [0.2, 0.8]])),
    ]
    return BayesianNetwork(dag, [2, 2], cpts)


class TestMissingValuePosteriors:
    def test_posterior_uses_object_evidence(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        # Object 0 observes a1=1, misses a2: pmf should be CPT row for a1=1.
        pmf = service.distribution((0, 1))
        assert pmf == pytest.approx([0.2, 0.8])

    def test_posterior_inverts_with_bayes(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        # Object 1 observes a2=0, misses a1: P(a1|a2=0) via Bayes rule.
        pmf = service.distribution((1, 0))
        p_a1_1 = 0.7 * 0.2 / (0.3 * 0.9 + 0.7 * 0.2)
        assert pmf[1] == pytest.approx(p_a1_1)

    def test_rejects_observed_cell(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        with pytest.raises(ValueError):
            service.distribution((2, 0))

    def test_all_distributions_covers_every_variable(self):
        ds = two_attr_dataset()
        service = MissingValuePosteriors(chain_network(), ds)
        dists = service.all_distributions()
        assert set(dists) == set(ds.variables())
        for pmf in dists.values():
            assert pmf.sum() == pytest.approx(1.0)

    def test_cardinality_mismatch_rejected(self):
        ds = IncompleteDataset(
            values=np.array([[MISSING, 0]]), domain_sizes=[3, 2]
        )
        with pytest.raises(ValueError):
            MissingValuePosteriors(chain_network(), ds)

    def test_cache_returns_copies(self):
        service = MissingValuePosteriors(chain_network(), two_attr_dataset())
        a = service.distribution((0, 1))
        a[0] = 123.0
        b = service.distribution((0, 1))
        assert b[0] != 123.0


def vstructure_network():
    dag = dag_from_edges(3, iter([(0, 2), (1, 2)]))
    cpt2 = np.array(
        [
            [[0.9, 0.1], [0.4, 0.6]],
            [[0.3, 0.7], [0.8, 0.2]],
        ]
    )
    cpts = [
        CPT(0, (), np.array([0.4, 0.6])),
        CPT(1, (), np.array([0.7, 0.3])),
        CPT(2, (0, 1), cpt2),
    ]
    return BayesianNetwork(dag, [2, 2, 2], cpts)


def random_incomplete(seed, n=30, d=2, missing_rate=0.4):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, 2, size=(n, d))
    values[rng.random((n, d)) < missing_rate] = MISSING
    return IncompleteDataset(values=values, domain_sizes=[2] * d)


class TestVectorizedPrecompute:
    """The signature-grouped bulk pass must match per-cell inference."""

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_per_cell_inference(self, seed):
        ds = random_incomplete(seed)
        variables, dense = MissingValuePosteriors(chain_network(), ds).precompute_all()
        per_cell = MissingValuePosteriors(chain_network(), ds)
        assert variables == list(ds.variables())
        for i, variable in enumerate(variables):
            expected = per_cell.distribution(variable)
            assert dense[i, : expected.size] == pytest.approx(
                expected, abs=1e-12
            )
            assert (dense[i, expected.size :] == 0.0).all()

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_per_cell_with_collider_network(self, seed):
        ds = random_incomplete(seed, d=3)
        service = MissingValuePosteriors(vstructure_network(), ds)
        variables, dense = service.precompute_all()
        per_cell = MissingValuePosteriors(vstructure_network(), ds)
        for i, variable in enumerate(variables):
            assert dense[i, :2] == pytest.approx(
                per_cell.distribution(variable), abs=1e-12
            )

    def test_signature_group_accounting(self):
        ds = random_incomplete(0, n=40)
        service = MissingValuePosteriors(chain_network(), ds)
        variables, __ = service.precompute_all()
        stats = service.stats
        assert stats["cells"] == len(variables)
        rows_with_missing = {obj for obj, __ in variables}
        assert 0 < stats["signature_groups"] <= len(rows_with_missing)
        assert stats["inference_calls"] <= stats["cells"]

    def test_duplicate_rows_share_one_inference(self):
        values = np.array([[1, MISSING], [1, MISSING], [1, MISSING]])
        ds = IncompleteDataset(values=values, domain_sizes=[2, 2])
        service = MissingValuePosteriors(chain_network(), ds)
        variables, dense = service.precompute_all()
        assert len(variables) == 3
        assert service.stats == {
            "signature_groups": 1,
            "cells": 3,
            "inference_calls": 1,
        }
        assert (dense == dense[0]).all()

    def test_complete_dataset_has_no_work(self):
        ds = IncompleteDataset(values=np.array([[1, 0]]), domain_sizes=[2, 2])
        service = MissingValuePosteriors(chain_network(), ds)
        variables, dense = service.precompute_all()
        assert variables == []
        assert dense.shape == (0, 2)
        assert service.stats == {
            "signature_groups": 0,
            "cells": 0,
            "inference_calls": 0,
        }

    def test_all_distributions_uses_bulk_path(self):
        ds = random_incomplete(1)
        service = MissingValuePosteriors(chain_network(), ds)
        dists = service.all_distributions()
        assert service.stats["cells"] == len(dists)
        fresh = MissingValuePosteriors(chain_network(), ds)
        for variable, pmf in dists.items():
            assert pmf == pytest.approx(fresh.distribution(variable), abs=1e-12)


class TestFallbackDistributions:
    def test_uniform(self):
        ds = two_attr_dataset()
        dists = uniform_distributions(ds)
        assert set(dists) == set(ds.variables())
        for pmf in dists.values():
            assert np.allclose(pmf, 0.5)

    def test_empirical_uses_column_marginals(self):
        ds = two_attr_dataset()
        dists = empirical_distributions(ds, smoothing=0.0)
        # Column a1 observes values {1, 0}: pmf [0.5, 0.5].
        assert dists[(1, 0)] == pytest.approx([0.5, 0.5])
        # Column a2 observes values {0, 1}: pmf [0.5, 0.5].
        assert dists[(0, 1)] == pytest.approx([0.5, 0.5])

    def test_empirical_smoothing_keeps_support(self):
        values = np.array([[1, MISSING], [1, 0]])
        ds = IncompleteDataset(values=values, domain_sizes=[2, 2])
        dists = empirical_distributions(ds, smoothing=1.0)
        assert (dists[(0, 1)] > 0).all()
