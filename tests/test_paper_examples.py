"""End-to-end reproduction of every worked number in the paper.

Covers Table 1 (sample data), Table 3 (c-table), Table 4 (dominator sets),
Example 3 (ADPLL trace result ``Pr(phi(o5)) = 0.823``), Example 4 (the
entropies, the HHS utilities, the round-by-round c-table of Table 5 and
the final result set).
"""

import pytest

from repro.core import entropy, marginal_utility
from repro.ctable import Relation, const_greater_var, var_greater_const
from repro.datasets import MISSING, example_distributions, sample_dataset
from repro.probability import ProbabilityEngine, adpll_probability


@pytest.fixture
def engine(movies_store):
    return ProbabilityEngine(movies_store)


class TestTable1:
    def test_sample_dataset_values(self, movies):
        assert movies.n_objects == 5
        assert movies.n_attributes == 5
        assert movies.values[0].tolist() == [5, 2, 3, 4, 1]
        assert movies.values[1].tolist() == [6, MISSING, 2, 2, 2]
        assert movies.values[2].tolist() == [1, 1, MISSING, 5, 3]
        assert movies.values[3].tolist() == [4, 3, 1, 2, 1]
        assert movies.values[4].tolist() == [5, MISSING, MISSING, MISSING, 1]

    def test_variable_set(self, movies):
        assert set(movies.variables()) == {(1, 1), (2, 2), (4, 1), (4, 2), (4, 3)}


class TestTable4DominatorSets:
    def test_all_five(self, movies):
        from repro.ctable import dominator_sets

        sets = dominator_sets(movies)
        assert [s.tolist() for s in sets] == [[4], [], [], [1, 4], [0, 1]]


class TestTable3CTable:
    def test_constants(self, movies_ctable):
        assert movies_ctable.condition(1).is_true
        assert movies_ctable.condition(2).is_true

    def test_phi_o1_text(self, movies_ctable):
        text = str(movies_ctable.condition(0))
        assert "2 > Var(o5, a2)" in text
        assert "3 > Var(o5, a3)" in text
        assert "4 > Var(o5, a4)" in text

    def test_phi_o5_two_clauses(self, movies_ctable):
        phi5 = movies_ctable.condition(4)
        assert phi5.n_clauses() == 2
        assert phi5.variables() == {(4, 1), (4, 2), (4, 3), (1, 1)}


class TestExample3Probability:
    def test_pr_phi_o5(self, movies_ctable, movies_store):
        assert adpll_probability(
            movies_ctable.condition(4), movies_store
        ) == pytest.approx(0.823, abs=5e-4)

    def test_example_distributions_normalized(self):
        for pmf in example_distributions().values():
            assert pmf.sum() == pytest.approx(1.0)


class TestExample4:
    def test_entropies(self, movies_ctable, engine):
        assert entropy(engine.probability(movies_ctable.condition(0))) == pytest.approx(
            0.72, abs=0.005
        )
        assert entropy(engine.probability(movies_ctable.condition(3))) == pytest.approx(
            0.62, abs=0.005
        )
        assert entropy(engine.probability(movies_ctable.condition(4))) == pytest.approx(
            0.67, abs=0.005
        )

    def test_initial_result_set(self, movies_ctable):
        # "Currently, the result set R is {o2, o3}."
        assert movies_ctable.result_set() == [1, 2]

    def test_o1_marginal_utilities(self, movies_ctable, engine):
        condition = movies_ctable.condition(0)
        e1 = const_greater_var(2, 4, 1)
        e2 = const_greater_var(3, 4, 2)
        e3 = const_greater_var(4, 4, 3)
        assert marginal_utility(condition, e1, engine) == pytest.approx(0.072, abs=2e-3)
        assert marginal_utility(condition, e2, engine) == pytest.approx(0.157, abs=2e-3)
        assert marginal_utility(condition, e3, engine) == pytest.approx(0.322, abs=2e-3)
        # "Hence, the expression e3 is chosen to crowdsource."
        best = max([e1, e2, e3], key=lambda e: marginal_utility(condition, e, engine))
        assert best == e3

    def test_table5_after_round_one(self, movies_ctable, engine):
        """Answers: Var(o5,a4) < 4 and Var(o5,a3) = 3 (Example 4)."""
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        # Table 5 row o1: true.
        assert ct.condition(0).is_true
        # "The result set R is updated as {o1, o2, o3}."
        assert ct.result_set() == [0, 1, 2]
        # Table 5 row o4 keeps exactly: (Var(o2,a2)<3) ^ [(Var(o5,a2)<3) v (Var(o5,a4)<2)].
        phi4 = ct.condition(3)
        assert phi4.variables() == {(1, 1), (4, 1), (4, 3)}
        assert phi4.n_clauses() == 2

    def test_round_two_entropies(self, movies_ctable, engine):
        """After round one, H(o4)=0.63 and H(o5)=0.88 in the paper."""
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        h4 = entropy(engine.probability(ct.condition(3)))
        h5 = entropy(engine.probability(ct.condition(4)))
        assert h4 == pytest.approx(0.63, abs=0.01)
        assert h5 == pytest.approx(0.88, abs=0.01)

    def test_final_state(self, movies_ctable):
        """Round two answers: Var(o5,a2) > 2 and Var(o2,a2) > 3.

        "Finally, phi(o4) becomes false, and phi(o5) turns true."
        """
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        ct.apply_answer(var_greater_const(4, 1, 2), Relation.GREATER)
        ct.apply_answer(const_greater_var(3, 1, 1), Relation.LESS)
        assert ct.condition(3).is_false
        assert ct.condition(4).is_true
        assert ct.result_set() == [0, 1, 2, 4]
