"""Tests for the NBA and Adult-like synthetic dataset generators."""

import numpy as np
import pytest

from repro.datasets import adult_like_network, generate_nba, generate_synthetic
from repro.datasets.nba import ATTRIBUTE_NAMES as NBA_ATTRS
from repro.datasets.synthetic import ATTRIBUTE_NAMES as SYN_ATTRS
from repro.datasets.synthetic import DOMAIN_SIZES as SYN_DOMAINS


class TestNBA:
    def test_shape_and_names(self):
        ds = generate_nba(n_objects=200, seed=0)
        assert ds.n_objects == 200
        assert ds.n_attributes == 11
        assert ds.attribute_names == NBA_ATTRS

    def test_missing_rate_close_to_target(self):
        ds = generate_nba(n_objects=500, missing_rate=0.15, seed=0)
        assert ds.missing_rate == pytest.approx(0.15, abs=0.01)

    def test_ground_truth_present(self):
        ds = generate_nba(n_objects=50, seed=0)
        assert ds.has_ground_truth()

    def test_reproducible(self):
        a = generate_nba(n_objects=100, seed=5)
        b = generate_nba(n_objects=100, seed=5)
        assert np.array_equal(a.values, b.values)
        assert np.array_equal(a.complete, b.complete)

    def test_different_seeds_differ(self):
        a = generate_nba(n_objects=100, seed=5)
        b = generate_nba(n_objects=100, seed=6)
        assert not np.array_equal(a.complete, b.complete)

    def test_attributes_are_correlated(self):
        # The latent-skill model must induce correlation for the Bayesian
        # network preprocessing to have something to learn.
        ds = generate_nba(n_objects=2000, missing_rate=0.0, seed=0)
        minutes = ds.complete[:, 1].astype(float)
        points = ds.complete[:, 2].astype(float)
        corr = np.corrcoef(minutes, points)[0, 1]
        assert corr > 0.5

    def test_levels_respect_domains(self):
        ds = generate_nba(n_objects=300, levels=6, seed=0)
        for j, size in enumerate(ds.domain_sizes):
            assert size <= 6
            assert ds.complete[:, j].max() < size

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            generate_nba(n_objects=0)


class TestSynthetic:
    def test_shape(self):
        ds = generate_synthetic(n_objects=150, seed=0)
        assert ds.n_objects == 150
        assert ds.n_attributes == 9
        assert ds.attribute_names == SYN_ATTRS
        assert list(ds.domain_sizes) == SYN_DOMAINS

    def test_reproducible(self):
        a = generate_synthetic(n_objects=100, seed=2)
        b = generate_synthetic(n_objects=100, seed=2)
        assert np.array_equal(a.values, b.values)

    def test_network_is_valid(self):
        net = adult_like_network()
        assert net.n_nodes == 9
        # education -> income edge present
        assert net.dag.has_edge(1, 7)
        # sampling respects domains
        rows = net.sample(100, np.random.default_rng(0))
        for j, size in enumerate(SYN_DOMAINS):
            assert rows[:, j].max() < size

    def test_generated_data_shows_dependency(self):
        # income depends on education in the generating network: mutual
        # information between them should clearly beat an independent pair.
        ds = generate_synthetic(n_objects=5000, missing_rate=0.0, seed=1)
        edu = ds.complete[:, 1]
        income = ds.complete[:, 7]

        def mutual_information(x, y):
            joint = np.zeros((x.max() + 1, y.max() + 1))
            for a, b in zip(x, y):
                joint[a, b] += 1
            joint /= joint.sum()
            px = joint.sum(axis=1, keepdims=True)
            py = joint.sum(axis=0, keepdims=True)
            nz = joint > 0
            return float((joint[nz] * np.log(joint[nz] / (px @ py)[nz])).sum())

        # Independence noise floor at this sample size is ~(6*5)/(2*5000) ≈ 0.003.
        assert mutual_information(edu, income) > 0.015

    def test_missing_rate(self):
        ds = generate_synthetic(n_objects=400, missing_rate=0.2, seed=0)
        assert ds.missing_rate == pytest.approx(0.2, abs=0.01)

    def test_rejects_bad_size(self):
        with pytest.raises(ValueError):
            generate_synthetic(n_objects=-1)
