"""Edge-path tests that don't fit the per-module files."""

import numpy as np
import pytest

from repro.bayesnet import CPT, BayesianNetwork, dag_from_edges
from repro.ctable import Condition, var_greater_const
from repro.metrics import Stopwatch


class TestNetworkEdgeCases:
    def test_log_likelihood_minus_inf_on_impossible_row(self):
        dag = dag_from_edges(1, iter([]))
        net = BayesianNetwork(dag, [2], [CPT(0, (), np.array([1.0, 0.0]))])
        assert net.log_likelihood(np.array([[1]])) == float("-inf")

    def test_sample_zero_rows(self):
        dag = dag_from_edges(2, iter([(0, 1)]))
        net = BayesianNetwork(
            dag,
            [2, 2],
            [
                CPT(0, (), np.array([0.5, 0.5])),
                CPT(1, (0,), np.array([[0.5, 0.5], [0.5, 0.5]])),
            ],
        )
        assert net.sample(0, np.random.default_rng(0)).shape == (0, 2)

    def test_sample_negative_rejected(self):
        dag = dag_from_edges(1, iter([]))
        net = BayesianNetwork(dag, [2], [CPT(0, (), np.array([0.5, 0.5]))])
        with pytest.raises(ValueError):
            net.sample(-1, np.random.default_rng(0))

    def test_assignment_length_checked(self):
        dag = dag_from_edges(1, iter([]))
        net = BayesianNetwork(dag, [2], [CPT(0, (), np.array([0.5, 0.5]))])
        with pytest.raises(ValueError):
            net.joint_probability([0, 1])


class TestStopwatchSummary:
    def test_summary_dict(self):
        watch = Stopwatch()
        with watch.section("x"):
            pass
        summary = watch.summary()
        assert "x" in summary
        assert summary["x"] >= 0.0


class TestStringRepresentations:
    def test_condition_str_and_repr(self):
        c = Condition.of([[var_greater_const(4, 1, 2)]])
        assert "Var(o5, a2) > 2" in str(c)
        assert "Condition(clauses=1)" == repr(c)
        assert "Condition(True)" == repr(Condition.true())

    def test_expression_repr(self):
        e = var_greater_const(0, 0, 1)
        assert "Expression" in repr(e)

    def test_dataset_repr(self, movies):
        assert "movies" in repr(movies)

    def test_accuracy_report_str(self):
        from repro.metrics import accuracy_report

        assert "F1=" in str(accuracy_report([1], [1]))


class TestTopKBoundarySelection:
    def test_boundary_candidates_straddle(self):
        from repro.datasets import generate_nba
        from repro.probability import DistributionStore, ProbabilityEngine
        from repro.topk.query import CrowdTopKDominating, TopKConfig
        from repro.topk.scores import build_score_models
        from repro.bayesnet.posteriors import uniform_distributions

        nba = generate_nba(n_objects=80, missing_rate=0.15, seed=3)
        query = CrowdTopKDominating(
            nba, TopKConfig(k=8, budget=0), distributions=uniform_distributions(nba)
        )
        models = build_score_models(nba)
        store = DistributionStore(uniform_distributions(nba))
        engine = ProbabilityEngine(store)
        straddlers = query._boundary_candidates(models, engine)
        ranking = query._ranking(models, engine)
        boundary = models[ranking[7]].expected_score(engine)
        for model in straddlers:
            lo, hi = model.score_bounds()
            assert lo <= boundary <= hi or straddlers  # fallback allowed
        # Sorted by variance descending.
        variances = [m.score_variance(engine) for m in straddlers]
        assert variances == sorted(variances, reverse=True)
