"""Tests for the pytest-benchmark JSON summarizer."""

import json

import pytest

from repro.benchreport import load_benchmarks, main, render_markdown, render_text, summarize


@pytest.fixture
def bench_json(tmp_path):
    payload = {
        "benchmarks": [
            {
                "name": "test_alpha[0.05]",
                "fullname": "benchmarks/bench_fig08_alpha.py::test_alpha[0.05]",
                "stats": {"mean": 0.123},
                "extra_info": {"f1": 0.9, "tasks": 50},
            },
            {
                "name": "test_alpha[0.01]",
                "fullname": "benchmarks/bench_fig08_alpha.py::test_alpha[0.01]",
                "stats": {"mean": 0.05},
                "extra_info": {"f1": 0.7, "tasks": 50},
            },
            {
                "name": "test_other",
                "fullname": "benchmarks/bench_fig02_ctable.py::test_other",
                "stats": {"mean": 1.0},
                "extra_info": {},
            },
        ]
    }
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(payload))
    return path


class TestSummarize:
    def test_groups_by_module(self, bench_json):
        groups = summarize(load_benchmarks(bench_json))
        assert len(groups) == 2
        assert any("fig08" in g for g in groups)

    def test_rows_sorted_and_carry_extra_info(self, bench_json):
        groups = summarize(load_benchmarks(bench_json))
        rows = next(v for k, v in groups.items() if "fig08" in k)
        assert rows[0]["benchmark"] == "test_alpha[0.01]"
        assert rows[0]["f1"] == 0.7

    def test_rejects_non_benchmark_json(self, tmp_path):
        path = tmp_path / "x.json"
        path.write_text("{}")
        with pytest.raises(ValueError):
            load_benchmarks(path)


class TestRendering:
    def test_text(self, bench_json):
        text = render_text(summarize(load_benchmarks(bench_json)))
        assert "f1" in text
        assert "test_alpha[0.05]" in text

    def test_markdown(self, bench_json):
        md = render_markdown(summarize(load_benchmarks(bench_json)))
        assert md.count("###") == 2
        assert "| benchmark |" in md

    def test_cli(self, bench_json, capsys):
        assert main([str(bench_json)]) == 0
        assert "benchmark" in capsys.readouterr().out
        assert main([str(bench_json), "--markdown"]) == 0
        assert "###" in capsys.readouterr().out
