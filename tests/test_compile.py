"""Tests for the compiled d-DNNF probability backend.

Covers the compiler itself (parity with ADPLL and naive enumeration,
circuit structure invariants, node-budget enforcement), incremental
re-weighting through ``CircuitStore`` (propagate-not-recompile under
answer sequences, recompile attribution), and the engine integration
(``backend="compiled"`` ladder through the compile breaker down to
ADPLL/sampling, counters, config/CLI knobs, obs verification).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BayesCrowd, BayesCrowdConfig
from repro.ctable import (
    Condition,
    Expression,
    Relation,
    Var,
    VariableConstraints,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)
from repro.datasets import generate_nba
from repro.errors import ResourceBudgetError
from repro.obs.__main__ import verify_probability
from repro.probability import (
    ADPLL,
    DEFAULT_CIRCUIT_CACHE_SIZE,
    DEFAULT_COMPILE_NODE_BUDGET,
    CircuitForest,
    CircuitStore,
    DistributionStore,
    ProbabilityEngine,
    compile_condition,
    naive_probability,
)

V, W, U = (0, 0), (1, 0), (2, 0)


def uniform_store(domain=4, variables=(V, W, U), constraints=None):
    pmf = np.full(domain, 1.0 / domain)
    return DistributionStore({v: pmf.copy() for v in variables}, constraints)


def branching_condition():
    """Clauses sharing variables, so compilation needs decision nodes."""
    return Condition.of(
        [
            [var_greater_var(0, 1, 0), var_greater_const(2, 0, 1)],
            [var_greater_var(1, 2, 0), const_greater_var(2, 0, 0)],
            [var_greater_var(0, 2, 0)],
        ]
    )


# ----------------------------------------------------------------------
# hypothesis strategy: condition + constrained store + answer sequence
# ----------------------------------------------------------------------
@st.composite
def condition_store_answers(draw):
    """A condition, a constraint-backed store, and weight-moving answers.

    Answers are drawn as ``Var > c`` facts over the condition's own
    variables (true or false), so applying them narrows pmfs -- the
    re-weighting workload the compiled backend exists for.
    """
    domain = draw(st.integers(2, 4))
    variables = [(o, 0) for o in range(4)]
    pmfs = {}
    for v in variables:
        weights = np.array(
            [draw(st.integers(1, 5)) for __ in range(domain)], dtype=float
        )
        pmfs[v] = weights / weights.sum()
    clauses = []
    for __ in range(draw(st.integers(1, 3))):
        clause = []
        for __ in range(draw(st.integers(1, 3))):
            kind = draw(st.sampled_from(["vc", "cv", "vv"]))
            v1 = draw(st.sampled_from(variables))
            if kind == "vc":
                clause.append(
                    var_greater_const(v1[0], v1[1], draw(st.integers(0, domain - 1)))
                )
            elif kind == "cv":
                clause.append(
                    const_greater_var(draw(st.integers(0, domain - 1)), v1[0], v1[1])
                )
            else:
                v2 = draw(st.sampled_from([v for v in variables if v != v1]))
                clause.append(Expression(Var(*v1), Var(*v2)))
        clauses.append(clause)
    condition = Condition.of(clauses)
    answers = []
    for __ in range(draw(st.integers(0, 3))):
        obj = draw(st.sampled_from(range(4)))
        cut = draw(st.integers(0, domain - 2))
        relation = draw(st.sampled_from([Relation.GREATER, Relation.LESS]))
        answers.append((var_greater_const(obj, 0, cut), relation))
    constraints = VariableConstraints([domain])
    store = DistributionStore(pmfs, constraints)
    return condition, store, constraints, answers


class TestCompileParity:
    @given(condition_store_answers())
    @settings(max_examples=150, deadline=None)
    def test_compiled_matches_adpll_and_naive(self, drawn):
        condition, store, constraints, answers = drawn
        if condition.is_constant:
            return
        exact = naive_probability(condition, store)
        assert ADPLL(store).probability(condition) == pytest.approx(exact, abs=1e-9)
        circuit = compile_condition(condition, store)
        assert circuit.evaluate(store) == pytest.approx(exact, abs=1e-9)

    @given(condition_store_answers())
    @settings(max_examples=100, deadline=None)
    def test_propagate_tracks_answer_sequences(self, drawn):
        """One compile, then re-weight per answer: always matches naive."""
        condition, store, constraints, answers = drawn
        if condition.is_constant:
            return
        circuit = compile_condition(condition, store)
        circuit.evaluate(store)
        for expression, relation in answers:
            try:
                constraints.apply_answer(expression, relation)
            except ValueError:
                continue  # contradicting answer sequence; constraints refuse
            exact = naive_probability(condition, store)
            assert circuit.propagate(store) == pytest.approx(exact, abs=1e-9)
            # a fresh ADPLL sees the same weights
            assert ADPLL(store).probability(condition) == pytest.approx(
                exact, abs=1e-9
            )

    @pytest.mark.parametrize("heuristic", ["frequency", "min_domain", "first"])
    def test_all_branch_heuristics_exact(self, heuristic):
        store = uniform_store()
        condition = branching_condition()
        exact = naive_probability(condition, store)
        circuit = compile_condition(condition, store, heuristic=heuristic)
        assert circuit.evaluate(store) == pytest.approx(exact, abs=1e-9)

    def test_unsmoothed_circuit_same_probability(self):
        store = uniform_store()
        condition = branching_condition()
        smoothed = compile_condition(condition, store, smooth=True)
        plain = compile_condition(condition, store, smooth=False)
        assert smoothed.evaluate(store) == pytest.approx(
            plain.evaluate(store), abs=1e-12
        )
        assert len(plain) <= len(smoothed)


class TestCircuitStructure:
    def test_constants_compile_to_trivial_circuits(self):
        store = uniform_store()
        assert compile_condition(Condition.true(), store).evaluate(store) == 1.0
        assert compile_condition(Condition.false(), store).evaluate(store) == 0.0

    def test_independent_condition_compiles_without_decisions(self):
        # disjoint variables: determinstic clause sums only, so the node
        # count stays tiny and no variable is branched on
        store = uniform_store()
        condition = Condition.of(
            [[var_greater_const(0, 0, 1)], [var_greater_const(1, 0, 2)]]
        )
        circuit = compile_condition(condition, store)
        assert len(circuit) < 10

    def test_dedup_shares_identical_residuals(self):
        # the same residual reached along different branches must compile
        # to the same node: circuit size grows far slower than the trace
        store = uniform_store(domain=4)
        condition = branching_condition()
        circuit = compile_condition(condition, store)
        trace_nodes = ADPLL(store, use_memo=False)
        trace_nodes.probability(condition)
        assert len(circuit) < trace_nodes.branch_count * 4

    def test_decision_covers_full_base_domain(self):
        """Branching spans the base domain even when constraints narrow it.

        This is what keeps the circuit valid when an answer's exclusion is
        later overwritten (contradiction handling can re-expand a pmf).
        """
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        condition = branching_condition()
        constraints.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        circuit = compile_condition(condition, store)
        before = circuit.evaluate(store)
        constraints.apply_answer(var_greater_const(1, 0, 1), Relation.GREATER)
        exact = naive_probability(condition, store)
        assert circuit.propagate(store) == pytest.approx(exact, abs=1e-9)
        assert before != pytest.approx(circuit.value, abs=0)

    def test_children_precede_parents(self):
        store = uniform_store()
        circuit = compile_condition(branching_condition(), store)
        for node, kids in enumerate(circuit.children):
            assert all(child < node for child in kids)

    def test_node_budget_trips(self):
        store = uniform_store()
        with pytest.raises(ResourceBudgetError) as err:
            compile_condition(branching_condition(), store, node_budget=4)
        assert "circuit node budget" in str(err.value)

    def test_rejects_bad_parameters(self):
        store = uniform_store()
        with pytest.raises(ValueError):
            compile_condition(branching_condition(), store, heuristic="magic")
        with pytest.raises(ValueError):
            compile_condition(branching_condition(), store, node_budget=-1)


class TestCircuitStore:
    def make(self, domain=4):
        constraints = VariableConstraints([domain])
        store = uniform_store(domain=domain, constraints=constraints)
        return CircuitStore(store), store, constraints

    def test_compile_once_then_reuse(self):
        circuits, store, constraints = self.make()
        condition = branching_condition()
        first = circuits.probability(condition)
        second = circuits.probability(condition)
        assert first == second
        stats = circuits.stats()
        assert stats["circuits_compiled"] == 1
        assert stats["circuit_reuses"] == 1
        assert stats["propagations"] == 0

    def test_answers_propagate_without_recompiling(self):
        circuits, store, constraints = self.make()
        condition = branching_condition()
        circuits.probability(condition, obj=7)
        for cut, obj in ((1, 0), (0, 1), (2, 2)):
            constraints.apply_answer(
                var_greater_const(obj, 0, cut), Relation.GREATER
            )
            value = circuits.probability(condition, obj=7)
            assert value == pytest.approx(
                naive_probability(condition, store), abs=1e-9
            )
        stats = circuits.stats()
        assert stats["circuits_compiled"] == 1
        assert stats["recompiles"] == 0
        assert stats["propagations"] == 3

    def test_changed_condition_counts_recompile(self):
        circuits, store, constraints = self.make()
        condition = branching_condition()
        circuits.probability(condition, obj=7)
        simplified = condition.assign_expression(var_greater_var(0, 1, 0), True)
        assert simplified != condition
        circuits.probability(simplified, obj=7)
        stats = circuits.stats()
        assert stats["circuits_compiled"] == 2
        assert stats["recompiles"] == 1

    def test_eviction_recompile_is_counted(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        circuits = CircuitStore(store, cache_size=1)
        a = Condition.of([[var_greater_const(0, 0, 1)]])
        b = Condition.of([[var_greater_const(1, 0, 2)]])
        circuits.probability(a)
        circuits.probability(b)  # evicts a
        circuits.probability(a)  # recompile of a previously compiled condition
        assert circuits.stats()["recompiles"] == 1
        assert circuits.stats()["circuits_compiled"] == 3

    def test_constants_short_circuit(self):
        circuits, __, ___ = self.make()
        assert circuits.probability(Condition.true()) == 1.0
        assert circuits.probability(Condition.false()) == 0.0
        assert circuits.stats()["circuits_compiled"] == 0

    def test_budget_trip_leaves_counters_clean(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        circuits = CircuitStore(store, node_budget=4)
        with pytest.raises(ResourceBudgetError):
            circuits.probability(branching_condition())
        assert circuits.stats()["circuits_compiled"] == 0
        assert circuits.stats()["circuit_nodes"] == 0


class TestCircuitForest:
    """Store-scoped sharing + refcounted eviction (PR-9 tentpole)."""

    def make(self, domain=4, **kwargs):
        constraints = VariableConstraints([domain])
        store = uniform_store(domain=domain, constraints=constraints)
        return CircuitForest(store, **kwargs), store, constraints

    def conditions(self, n=8):
        """Overlapping conditions so subcircuit sharing actually occurs."""
        out = [branching_condition()]
        for o in range(n - 1):
            out.append(
                Condition.of(
                    [
                        [var_greater_var(o % 3, (o + 1) % 3, 0)],
                        [var_greater_const(o % 3, 0, 1 + o % 2)],
                    ]
                )
            )
        return out

    def check_invariants(self, forest):
        """Refcount/unique-table consistency over the live slot pool."""
        for key, slot in forest._unique.items():
            assert forest._keys[slot] == key
        for slot in forest.live_slots():
            if slot not in (forest.TRUE, forest.FALSE):
                assert forest.refs[slot] >= 1, slot

    def test_cross_condition_sharing(self):
        forest, store, __ = self.make()
        conditions = self.conditions()
        for i, condition in enumerate(conditions):
            forest.register(condition, obj=i)
        stats = forest.stats()
        assert stats["nodes_shared"] > 0
        assert 0.0 < stats["shared_fraction"] < 1.0
        # shared forest is strictly smaller than the sum of circuit sizes
        individual = sum(
            len(compile_condition(c, store)) for c in conditions
        )
        assert stats["forest_nodes"] < individual
        for condition in conditions:
            assert forest.probability(condition) == pytest.approx(
                naive_probability(condition, store), abs=1e-9
            )

    def test_eviction_under_mid_run_store_mutation(self):
        """Capacity churn while answers move weights: exact + consistent."""
        forest, store, constraints = self.make(capacity=3)
        conditions = self.conditions(9)
        for i, condition in enumerate(conditions):
            forest.probability(condition)
            if i % 3 == 2:  # mutate the store mid-run
                constraints.apply_answer(
                    var_greater_const(i % 3, 0, i % 2), Relation.GREATER
                )
            self.check_invariants(forest)
            assert len(forest) <= 3
        assert forest.stats()["forest_evictions"] > 0
        # survivors still track the mutated store exactly
        for condition in conditions[-3:]:
            assert forest.probability(condition) == pytest.approx(
                naive_probability(condition, store), abs=1e-9
            )

    def test_evicted_condition_recompiles(self):
        forest, __, ___ = self.make(capacity=1)
        a = Condition.of([[var_greater_const(0, 0, 1)]])
        b = Condition.of([[var_greater_const(1, 0, 2)]])
        forest.register(a)
        forest.register(b)  # evicts a's root pin
        forest.register(a)
        assert forest.stats()["recompiles"] == 1
        self.check_invariants(forest)

    def test_budget_rollback_leaves_forest_clean(self):
        forest, __, ___ = self.make(node_budget=4)
        with pytest.raises(ResourceBudgetError):
            forest.register(branching_condition())
        assert forest.forest_nodes == 0
        assert len(forest) == 0
        self.check_invariants(forest)
        # and the forest still works for conditions within budget
        small = Condition.of([[var_greater_const(0, 0, 1)]])
        value = forest.probability(small)
        assert 0.0 <= value <= 1.0

    def test_propagate_without_recompiling(self):
        forest, store, constraints = self.make()
        conditions = self.conditions()
        for condition in conditions:
            forest.probability(condition)
        for cut, obj in ((1, 0), (0, 1), (2, 2)):
            constraints.apply_answer(
                var_greater_const(obj, 0, cut), Relation.GREATER
            )
            for condition in conditions:
                assert forest.probability(condition) == pytest.approx(
                    naive_probability(condition, store), abs=1e-9
                )
        stats = forest.stats()
        assert stats["recompiles"] == 0
        assert stats["circuits_compiled"] == len(set(self.conditions()))


class TestEngineCompiledBackend:
    def test_rejects_bad_backend_combinations(self):
        with pytest.raises(ValueError):
            ProbabilityEngine(uniform_store(), backend="magic")
        with pytest.raises(ValueError):
            ProbabilityEngine(uniform_store(), method="naive", backend="compiled")

    def test_compiled_matches_adpll_engine(self):
        constraints = VariableConstraints([4])
        compiled = ProbabilityEngine(
            uniform_store(constraints=constraints), backend="compiled"
        )
        plain = ProbabilityEngine(uniform_store(constraints=constraints))
        condition = branching_condition()
        assert compiled.probability(condition) == pytest.approx(
            plain.probability(condition), abs=1e-9
        )
        stats = compiled.stats()
        assert stats["probability_backend"] == "compiled"
        assert stats["circuits_compiled"] == 1
        assert stats["compile_fallbacks"] == 0

    def test_probability_many_objects_threading(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        engine = ProbabilityEngine(store, backend="compiled")
        conditions = [
            branching_condition(),
            Condition.of([[var_greater_const(0, 0, 1)]]),
        ]
        values = engine.probability_many(conditions, objects=[11, 12])
        expected = [naive_probability(c, store) for c in conditions]
        assert values == pytest.approx(expected, abs=1e-9)
        with pytest.raises(ValueError):
            engine.probability_many(conditions, objects=[11])

    def test_budget_trip_degrades_to_adpll_exactly(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        engine = ProbabilityEngine(store, backend="compiled", compile_node_budget=4)
        condition = branching_condition()
        value = engine.probability(condition)
        assert value == pytest.approx(naive_probability(condition, store), abs=1e-9)
        stats = engine.stats()
        assert stats["compile_fallbacks"] == 1
        assert stats["circuits_compiled"] == 0

    def test_repeated_trips_open_compile_breaker(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        engine = ProbabilityEngine(
            store,
            backend="compiled",
            compile_node_budget=4,
            breaker_threshold=2,
            use_cache=False,
        )
        condition = branching_condition()
        for __ in range(4):
            engine.probability(condition)
        stats = engine.stats()
        assert stats["compile_breaker_state"] == "open"
        assert stats["compile_breaker_trips"] >= 1
        assert stats["compile_fallbacks"] >= 2
        # every value still exact through the ADPLL fallback
        assert engine.probability(condition) == pytest.approx(
            naive_probability(condition, store), abs=1e-9
        )

    def test_full_ladder_compiled_to_guarded_sampler(self):
        """Compile budget trips AND ADPLL budget trips: the sampler catches."""
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        engine = ProbabilityEngine(
            store,
            backend="compiled",
            compile_node_budget=4,
            node_budget=1,
        )
        condition = branching_condition()
        value = engine.probability(condition)
        assert 0.0 <= value <= 1.0
        detail = engine.probability_detailed(condition)
        assert not detail.exact
        assert detail.error_bound > 0.0
        stats = engine.stats()
        assert stats["compile_fallbacks"] == 1
        assert stats["guard_fallbacks"] == 1

    def test_pool_path_matches_sequential(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        conditions = [branching_condition()] + [
            Condition.of([[var_greater_const(o % 3, 0, c)]])
            for o in range(3)
            for c in range(3)
        ]
        sequential = ProbabilityEngine(store, backend="compiled").probability_many(
            conditions
        )
        pooled = ProbabilityEngine(
            store, backend="compiled", n_jobs=2
        ).probability_many(conditions, chunk_size=2)
        assert pooled == pytest.approx(sequential, abs=1e-12)


class TestConfigAndQuery:
    def test_config_knobs_validate(self):
        config = BayesCrowdConfig(probability_backend="compiled")
        assert config.compile_node_budget == DEFAULT_COMPILE_NODE_BUDGET
        assert config.circuit_cache_size == DEFAULT_CIRCUIT_CACHE_SIZE
        with pytest.raises(ValueError):
            BayesCrowdConfig(probability_backend="magic")
        with pytest.raises(ValueError):
            BayesCrowdConfig(
                probability_backend="compiled", probability_method="naive"
            )
        with pytest.raises(ValueError):
            BayesCrowdConfig(
                probability_backend="forest", probability_method="naive"
            )
        with pytest.raises(ValueError):
            BayesCrowdConfig(compile_node_budget=-1)
        with pytest.raises(ValueError):
            BayesCrowdConfig(compile_node_budget=True)
        with pytest.raises(ValueError):
            BayesCrowdConfig(circuit_cache_size=-1)
        with pytest.raises(ValueError):
            BayesCrowdConfig(circuit_cache_size=True)

    def test_end_to_end_compiled_query_matches_adpll(self):
        dataset = generate_nba(n_objects=25, missing_rate=0.4, seed=5)
        results = {}
        for backend in ("adpll", "compiled"):
            config = BayesCrowdConfig(
                alpha=0.1,
                budget=12,
                latency=3,
                probability_backend=backend,
                worker_accuracy=1.0,
                seed=5,
            )
            result = BayesCrowd(dataset, config).run()
            results[backend] = result
        assert results["compiled"].answers == results["adpll"].answers
        for obj, p in results["compiled"].answer_probabilities.items():
            assert p == pytest.approx(
                results["adpll"].answer_probabilities[obj], abs=1e-9
            )
        stats = results["compiled"].engine_stats
        assert stats["probability_backend"] == "compiled"
        assert stats["circuits_compiled"] > 0
        assert stats["circuit_nodes"] >= stats["circuits_compiled"]


class TestObsVerifier:
    def snapshot(self, **overrides):
        counters = {
            "engine_circuits_compiled": 10,
            "engine_circuit_nodes": 120,
            "engine_propagations": 4,
            "engine_recompiles": 2,
            "engine_compile_fallbacks": 1,
            "engine_forest_nodes": 80,
            "engine_nodes_shared": 15,
        }
        gauges = {"engine_shared_fraction": 0.125}
        counters.update(
            {k: v for k, v in overrides.items() if k.startswith("engine_") and "fraction" not in k}
        )
        gauges.update(
            {k: v for k, v in overrides.items() if "fraction" in k}
        )
        return {"counters": counters, "gauges": gauges}

    def test_consistent_snapshot_passes(self):
        assert verify_probability(self.snapshot(), require=True) == []

    def test_missing_counters_only_fail_when_required(self):
        assert verify_probability({"counters": {}}, require=False) == []
        problems = verify_probability({"counters": {}}, require=True)
        assert problems and "missing" in problems[0]

    def test_recompiles_cannot_exceed_compiles(self):
        problems = verify_probability(
            self.snapshot(engine_recompiles=11), require=True
        )
        assert any("exceeds" in p for p in problems)

    def test_nodes_lower_bound(self):
        problems = verify_probability(
            self.snapshot(engine_circuit_nodes=3), require=True
        )
        assert any("at least one node" in p for p in problems)

    def test_negative_counters_rejected(self):
        problems = verify_probability(
            self.snapshot(engine_propagations=-1), require=True
        )
        assert any("non-negative" in p for p in problems)

    def test_shared_fraction_gauge_bounds(self):
        problems = verify_probability(
            self.snapshot(engine_shared_fraction=1.5), require=True
        )
        assert any("outside [0, 1]" in p for p in problems)

    def test_shared_nodes_require_live_forest(self):
        problems = verify_probability(
            self.snapshot(engine_forest_nodes=0, engine_nodes_shared=3),
            require=True,
        )
        assert any("empty forest" in p for p in problems)
