"""Tests for CPTs, parameter fitting, structure learning and the network."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet import (
    CPT,
    DAG,
    BayesianNetwork,
    bic_score,
    dag_from_edges,
    fit_cpt,
    hill_climb,
    log_likelihood,
    random_cpt,
    uniform_cpt,
)


class TestCPT:
    def test_rows_must_normalize(self):
        with pytest.raises(ValueError):
            CPT(node=0, parents=(), table=np.array([0.5, 0.4]))

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            CPT(node=0, parents=(), table=np.array([1.5, -0.5]))

    def test_rank_must_match_parents(self):
        with pytest.raises(ValueError):
            CPT(node=0, parents=(1,), table=np.array([0.5, 0.5]))

    def test_probability_lookup(self):
        table = np.array([[0.2, 0.8], [0.7, 0.3]])
        cpt = CPT(node=1, parents=(0,), table=table)
        assert cpt.probability(1, {0: 0}) == pytest.approx(0.8)
        assert cpt.probability(0, {0: 1}) == pytest.approx(0.7)

    def test_distribution_copy(self):
        cpt = uniform_cpt(0, 4)
        pmf = cpt.distribution({})
        pmf[0] = 99.0
        assert cpt.table[0] == pytest.approx(0.25)

    def test_uniform(self):
        cpt = uniform_cpt(2, 5, parents=(0,), parent_cards=(3,))
        assert cpt.table.shape == (3, 5)
        assert np.allclose(cpt.table, 0.2)

    def test_random_cpt_normalized(self, rng):
        cpt = random_cpt(0, 4, parents=(1, 2), parent_cards=(2, 3), rng=rng)
        assert cpt.table.shape == (2, 3, 4)
        assert np.allclose(cpt.table.sum(axis=-1), 1.0)


class TestFitCPT:
    def test_root_matches_frequencies(self):
        data = np.array([[0], [0], [1], [0]])
        cpt = fit_cpt(data, 0, [], [2], alpha=0.0)
        assert cpt.table == pytest.approx([0.75, 0.25])

    def test_smoothing_avoids_zeros(self):
        data = np.array([[0], [0]])
        cpt = fit_cpt(data, 0, [], [3], alpha=1.0)
        assert (cpt.table > 0).all()
        assert cpt.table[0] == pytest.approx(3 / 5)

    def test_conditional_counts(self):
        # P(child | parent): parent=0 -> child=1 always; parent=1 -> child=0.
        data = np.array([[0, 1], [0, 1], [1, 0]])
        cpt = fit_cpt(data, 1, [0], [2, 2], alpha=0.0)
        assert cpt.table[0] == pytest.approx([0.0, 1.0])
        assert cpt.table[1] == pytest.approx([1.0, 0.0])

    def test_unseen_parent_config_uniform_without_smoothing(self):
        data = np.array([[0, 0]])
        cpt = fit_cpt(data, 1, [0], [2, 2], alpha=0.0)
        assert cpt.table[1] == pytest.approx([0.5, 0.5])

    def test_rejects_negative_alpha(self):
        with pytest.raises(ValueError):
            fit_cpt(np.zeros((1, 1), dtype=int), 0, [], [2], alpha=-1)

    def test_log_likelihood_matches_manual(self):
        data = np.array([[0], [0], [1]])
        ll = log_likelihood(data, 0, [], [2])
        expected = 2 * np.log(2 / 3) + np.log(1 / 3)
        assert ll == pytest.approx(expected)


class TestStructureLearning:
    def _correlated_data(self, n=600, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 3, size=n)
        b = (a + rng.integers(0, 2, size=n)) % 3  # strongly depends on a
        c = rng.integers(0, 3, size=n)            # independent noise
        return np.column_stack([a, b, c])

    def test_recovers_dependency(self):
        data = self._correlated_data()
        result = hill_climb(data, [3, 3, 3], max_parents=2)
        dag = result.dag
        assert dag.has_edge(0, 1) or dag.has_edge(1, 0)

    def test_leaves_independent_nodes_alone(self):
        data = self._correlated_data()
        dag = hill_climb(data, [3, 3, 3], max_parents=2).dag
        assert not dag.parents(2) and not dag.children(2)

    def test_score_improves_over_empty(self):
        data = self._correlated_data()
        result = hill_climb(data, [3, 3, 3])
        empty_score = bic_score(data, DAG(3), [3, 3, 3])
        assert result.score > empty_score

    def test_respects_max_parents(self):
        rng = np.random.default_rng(1)
        base = rng.integers(0, 2, size=500)
        columns = [base]
        for __ in range(4):
            columns.append((base + rng.integers(0, 2, size=500)) % 2)
        data = np.column_stack(columns)
        dag = hill_climb(data, [2] * 5, max_parents=1).dag
        assert all(len(dag.parents(v)) <= 1 for v in range(5))

    def test_deterministic_given_rng(self):
        data = self._correlated_data()
        a = hill_climb(data, [3, 3, 3], rng=np.random.default_rng(7)).dag
        b = hill_climb(data, [3, 3, 3], rng=np.random.default_rng(7)).dag
        assert a == b

    def test_bic_score_decomposes(self):
        data = self._correlated_data(n=200)
        dag = dag_from_edges(3, iter([(0, 1)]))
        total = bic_score(data, dag, [3, 3, 3])
        manual = (
            log_likelihood(data, 0, [], [3, 3, 3])
            - 0.5 * np.log(200) * 2
            + log_likelihood(data, 1, [0], [3, 3, 3])
            - 0.5 * np.log(200) * 6
            + log_likelihood(data, 2, [], [3, 3, 3])
            - 0.5 * np.log(200) * 2
        )
        assert total == pytest.approx(manual)


class TestNetwork:
    def _chain_network(self):
        dag = dag_from_edges(2, iter([(0, 1)]))
        cpts = [
            CPT(0, (), np.array([0.3, 0.7])),
            CPT(1, (0,), np.array([[0.9, 0.1], [0.2, 0.8]])),
        ]
        return BayesianNetwork(dag, [2, 2], cpts)

    def test_joint_probability_chain_rule(self):
        net = self._chain_network()
        assert net.joint_probability([0, 1]) == pytest.approx(0.3 * 0.1)
        assert net.joint_probability([1, 1]) == pytest.approx(0.7 * 0.8)

    def test_joint_sums_to_one(self):
        net = self._chain_network()
        total = sum(net.joint_probability([a, b]) for a in (0, 1) for b in (0, 1))
        assert total == pytest.approx(1.0)

    def test_cpt_validation(self):
        dag = dag_from_edges(2, iter([(0, 1)]))
        bad_cpts = [
            CPT(0, (), np.array([0.3, 0.7])),
            CPT(1, (), np.array([0.5, 0.5])),  # parents disagree with DAG
        ]
        with pytest.raises(ValueError):
            BayesianNetwork(dag, [2, 2], bad_cpts)

    def test_sampling_matches_distribution(self, rng):
        net = self._chain_network()
        samples = net.sample(20_000, rng)
        assert samples[:, 0].mean() == pytest.approx(0.7, abs=0.02)
        given_one = samples[samples[:, 0] == 1][:, 1]
        assert given_one.mean() == pytest.approx(0.8, abs=0.02)

    def test_posterior_bayes_rule(self):
        net = self._chain_network()
        # P(a=1 | b=1) = 0.7*0.8 / (0.3*0.1 + 0.7*0.8)
        posterior = net.posterior(0, {1: 1})
        expected = 0.56 / 0.59
        assert posterior[1] == pytest.approx(expected)
        assert posterior.sum() == pytest.approx(1.0)

    def test_posterior_of_evidence_node_is_point_mass(self):
        net = self._chain_network()
        posterior = net.posterior(0, {0: 1})
        assert posterior.tolist() == [0.0, 1.0]

    def test_prior_matches_marginal(self):
        net = self._chain_network()
        prior = net.prior(1)
        expected_b1 = 0.3 * 0.1 + 0.7 * 0.8
        assert prior[1] == pytest.approx(expected_b1)

    def test_fit_round_trip(self, rng):
        net = self._chain_network()
        data = net.sample(5000, rng)
        learned = BayesianNetwork.fit(data, [2, 2], max_parents=1, smoothing=0.5)
        # Either edge direction encodes the same joint; compare joints.
        for a in (0, 1):
            for b in (0, 1):
                assert learned.joint_probability([a, b]) == pytest.approx(
                    net.joint_probability([a, b]), abs=0.03
                )

    def test_log_likelihood_finite(self, rng):
        net = self._chain_network()
        data = net.sample(100, rng)
        assert np.isfinite(net.log_likelihood(data))


class TestPosteriorAgainstEnumeration:
    @given(st.integers(0, 10_000))
    @settings(max_examples=20, deadline=None)
    def test_ve_equals_brute_force(self, seed):
        rng = np.random.default_rng(seed)
        # Random 4-node network with random edges and CPTs.
        cards = [2, 3, 2, 2]
        dag = DAG(4)
        for child in range(1, 4):
            for parent in range(child):
                if rng.random() < 0.5:
                    dag.add_edge(parent, child)
        cpts = [
            random_cpt(
                v,
                cards[v],
                sorted(dag.parents(v)),
                [cards[p] for p in sorted(dag.parents(v))],
                rng,
            )
            for v in range(4)
        ]
        net = BayesianNetwork(dag, cards, cpts)
        evidence = {1: int(rng.integers(3))}
        target = 2
        posterior = net.posterior(target, evidence)

        # Brute force over the full joint.
        import itertools

        num = np.zeros(cards[target])
        for assignment in itertools.product(*[range(c) for c in cards]):
            if assignment[1] != evidence[1]:
                continue
            num[assignment[target]] += net.joint_probability(list(assignment))
        expected = num / num.sum()
        assert np.allclose(posterior, expected, atol=1e-9)


class TestAvailableCaseLearning:
    def _incomplete_correlated(self, n=800, seed=0):
        rng = np.random.default_rng(seed)
        a = rng.integers(0, 3, size=n)
        b = (a + rng.integers(0, 2, size=n)) % 3
        data = np.column_stack([a, b])
        mask = rng.random(data.shape) < 0.3  # nothing fully complete needed
        return data, mask

    def test_fit_cpt_with_mask_matches_filtered_fit(self):
        data, mask = self._incomplete_correlated()
        keep = ~mask.any(axis=1)
        direct = fit_cpt(data[keep], 1, [0], [3, 3], alpha=1.0)
        masked = fit_cpt(data, 1, [0], [3, 3], alpha=1.0, mask=mask)
        assert np.allclose(direct.table, masked.table)

    def test_log_likelihood_with_mask_uses_family_rows(self):
        data, mask = self._incomplete_correlated()
        # Family {0}: only rows complete in column 0 count.
        keep = ~mask[:, 0]
        direct = log_likelihood(data[keep], 0, [], [3, 3])
        masked = log_likelihood(data, 0, [], [3, 3], mask=mask)
        assert masked == pytest.approx(direct)

    def test_hill_climb_recovers_edge_without_complete_rows(self):
        data, mask = self._incomplete_correlated(n=2000, seed=3)
        # Force every row to miss something irrelevant by adding a third
        # column that is missing everywhere except a few rows.
        noise = np.random.default_rng(0).integers(0, 2, size=(data.shape[0], 1))
        data3 = np.column_stack([data, noise])
        mask3 = np.column_stack([mask, np.ones(data.shape[0], dtype=bool)])
        mask3[:5, 2] = False
        assert (~mask3.any(axis=1)).sum() <= 5  # nearly no complete rows
        result = hill_climb(data3, [3, 3, 2], max_parents=2, mask=mask3)
        assert result.dag.has_edge(0, 1) or result.dag.has_edge(1, 0)

    def test_network_fit_with_mask(self):
        data, mask = self._incomplete_correlated(n=1500, seed=5)
        net = BayesianNetwork.fit(data, [3, 3], mask=mask)
        # The learned joint should reflect the a~b correlation.
        p_same = sum(net.joint_probability([v, v]) for v in range(3))
        assert p_same > 0.4  # independent uniform would give ~0.33
