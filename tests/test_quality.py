"""Tests for worker-quality estimation and weighted aggregation."""

import numpy as np
import pytest

from repro.crowd import (
    SimulatedCrowdPlatform,
    WorkerPool,
    estimate_worker_accuracies,
    filter_pool,
    make_weighted_aggregator,
    weighted_vote,
)
from repro.crowd.quality import _log_odds
from repro.ctable import Relation


class TestEstimation:
    def test_estimates_track_true_accuracy(self):
        pool = WorkerPool([0.6, 0.95], rng=np.random.default_rng(0))
        estimates = estimate_worker_accuracies(
            pool, n_gold_questions=300, rng=np.random.default_rng(1)
        )
        assert estimates[0] == pytest.approx(0.6, abs=0.08)
        assert estimates[1] == pytest.approx(0.95, abs=0.05)

    def test_smoothing_bounds_estimates(self):
        pool = WorkerPool([0.0, 1.0], rng=np.random.default_rng(0))
        estimates = estimate_worker_accuracies(
            pool, n_gold_questions=5, rng=np.random.default_rng(1)
        )
        assert 0.0 < estimates[0] < 1.0
        assert 0.0 < estimates[1] < 1.0

    def test_rejects_zero_questions(self):
        pool = WorkerPool(0.9, rng=np.random.default_rng(0))
        with pytest.raises(ValueError):
            estimate_worker_accuracies(pool, n_gold_questions=0)


class TestWeightedVote:
    def test_reliable_worker_outvotes_two_poor_ones(self):
        accuracies = {0: 0.99, 1: 0.4, 2: 0.4}
        votes = [(0, Relation.GREATER), (1, Relation.LESS), (2, Relation.LESS)]
        assert weighted_vote(votes, accuracies) is Relation.GREATER

    def test_equal_weights_reduce_to_majority(self):
        accuracies = {0: 0.8, 1: 0.8, 2: 0.8}
        votes = [(0, Relation.LESS), (1, Relation.LESS), (2, Relation.GREATER)]
        assert weighted_vote(votes, accuracies) is Relation.LESS

    def test_unknown_worker_uses_default(self):
        votes = [(7, Relation.EQUAL)]
        assert weighted_vote(votes, {}) is Relation.EQUAL

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            weighted_vote([], {})

    def test_tie_breaks_vary_without_rng(self):
        # Regression: a per-call default_rng(0) fallback replayed the
        # identical tie-break on every aggregation.
        accuracies = {0: 0.8, 1: 0.8}
        votes = [(0, Relation.LESS), (1, Relation.GREATER)]
        winners = {weighted_vote(votes, accuracies) for _ in range(200)}
        assert len(winners) > 1

    def test_log_odds_monotone(self):
        assert _log_odds(0.9) > _log_odds(0.6) > _log_odds(1 / 3)
        # At accuracy 1/3 (chance level for 3 options) the weight is ~0.
        assert _log_odds(1 / 3) == pytest.approx(0.0, abs=1e-9)


class TestFilterPool:
    def test_keeps_qualified_workers(self):
        pool = WorkerPool([0.5, 0.9, 0.95], rng=np.random.default_rng(0))
        accuracies = {0: 0.5, 1: 0.9, 2: 0.95}
        filtered = filter_pool(pool, accuracies, minimum_accuracy=0.8)
        assert len(filtered.workers) == 2
        assert filtered.mean_accuracy() == pytest.approx(0.925)

    def test_falls_back_to_best_worker(self):
        pool = WorkerPool([0.5, 0.6], rng=np.random.default_rng(0))
        filtered = filter_pool(pool, {0: 0.5, 1: 0.6}, minimum_accuracy=0.99)
        assert len(filtered.workers) == 1
        assert filtered.workers[0].accuracy == pytest.approx(0.6)


class TestPlatformIntegration:
    def test_weighted_aggregation_beats_majority_with_mixed_pool(self):
        """One expert among noisy workers: weighted voting should match or
        beat plain majority on answer accuracy."""
        from repro.datasets import sample_dataset
        from repro.crowd import ComparisonTask
        from repro.ctable import var_greater_const

        def run(aggregator_factory):
            rng = np.random.default_rng(3)
            dataset = sample_dataset()
            pool = WorkerPool([0.99, 0.45, 0.45], rng=rng)
            aggregator = aggregator_factory(pool, rng)
            platform = SimulatedCrowdPlatform(
                dataset, worker_pool=pool, rng=rng, aggregator=aggregator
            )
            correct = 0
            n = 400
            for __ in range(n):
                task = ComparisonTask(var_greater_const(4, 1, 2))  # truth: GREATER
                answer = platform.post_batch([task])[task]
                if answer is Relation.GREATER:
                    correct += 1
            return correct / n

        majority_accuracy = run(lambda pool, rng: None)
        true_accuracies = {w.worker_id: w.accuracy for w in
                           WorkerPool([0.99, 0.45, 0.45],
                                      rng=np.random.default_rng(3)).workers}
        weighted_accuracy = run(
            lambda pool, rng: make_weighted_aggregator(true_accuracies, rng=rng)
        )
        assert weighted_accuracy >= majority_accuracy
        assert weighted_accuracy > 0.9
