"""Unit tests for the incomplete dataset model."""

import numpy as np
import pytest

from repro.datasets import (
    MISSING,
    DatasetError,
    IncompleteDataset,
    from_complete,
)


def make_dataset(**kwargs):
    values = np.array([[1, 2], [MISSING, 0], [2, MISSING]])
    complete = np.array([[1, 2], [0, 0], [2, 1]])
    defaults = dict(values=values, domain_sizes=[3, 3], complete=complete)
    defaults.update(kwargs)
    return IncompleteDataset(**defaults)


class TestConstruction:
    def test_shapes(self):
        ds = make_dataset()
        assert ds.n_objects == 3
        assert ds.n_attributes == 2

    def test_mask_derived_from_values(self):
        ds = make_dataset()
        assert ds.mask.tolist() == [[False, False], [True, False], [False, True]]

    def test_missing_rate(self):
        ds = make_dataset()
        assert ds.missing_rate == pytest.approx(2 / 6)

    def test_rejects_1d_values(self):
        with pytest.raises(DatasetError):
            IncompleteDataset(values=np.array([1, 2, 3]), domain_sizes=[3])

    def test_rejects_domain_size_mismatch(self):
        with pytest.raises(DatasetError):
            make_dataset(domain_sizes=[3])

    def test_rejects_out_of_range_values(self):
        values = np.array([[5, 0]])
        with pytest.raises(DatasetError):
            IncompleteDataset(values=values, domain_sizes=[3, 3])

    def test_rejects_nonpositive_domain(self):
        with pytest.raises(DatasetError):
            make_dataset(domain_sizes=[3, 0])

    def test_rejects_complete_disagreement(self):
        bad = np.array([[1, 2], [0, 0], [2, 2]])
        bad[0, 0] = 0  # disagrees with observed value 1
        with pytest.raises(DatasetError):
            make_dataset(complete=bad)

    def test_rejects_complete_with_missing(self):
        bad = np.array([[1, 2], [MISSING, 0], [2, 1]])
        with pytest.raises(DatasetError):
            make_dataset(complete=bad)

    def test_default_names_generated(self):
        ds = make_dataset()
        assert ds.attribute_names == ["a1", "a2"]
        assert ds.object_names == ["o1", "o2", "o3"]


class TestAccessors:
    def test_is_missing(self):
        ds = make_dataset()
        assert ds.is_missing(1, 0)
        assert not ds.is_missing(0, 0)

    def test_observed_value(self):
        ds = make_dataset()
        assert ds.observed_value(0, 1) == 2

    def test_observed_value_raises_on_missing(self):
        ds = make_dataset()
        with pytest.raises(DatasetError):
            ds.observed_value(1, 0)

    def test_true_value(self):
        ds = make_dataset()
        assert ds.true_value(1, 0) == 0

    def test_true_value_requires_ground_truth(self):
        ds = make_dataset(complete=None)
        with pytest.raises(DatasetError):
            ds.true_value(1, 0)

    def test_observed_evidence(self):
        ds = make_dataset()
        assert ds.observed_evidence(1) == {1: 0}
        assert ds.observed_evidence(0) == {0: 1, 1: 2}

    def test_variables_enumerates_missing_cells(self):
        ds = make_dataset()
        assert sorted(ds.variables()) == [(1, 0), (2, 1)]
        assert ds.n_variables() == 2

    def test_is_complete_object(self):
        ds = make_dataset()
        assert ds.is_complete_object(0)
        assert not ds.is_complete_object(1)

    def test_complete_rows(self):
        ds = make_dataset()
        rows = ds.complete_rows()
        assert rows.tolist() == [[1, 2]]


class TestDerived:
    def test_subset_preserves_alignment(self):
        ds = make_dataset()
        sub = ds.subset([2, 0])
        assert sub.values.tolist() == [[2, MISSING], [1, 2]]
        assert sub.complete.tolist() == [[2, 1], [1, 2]]
        assert sub.object_names == ["o3", "o1"]

    def test_as_complete(self):
        ds = make_dataset()
        full = ds.as_complete()
        assert full.missing_rate == 0.0
        assert full.values.tolist() == ds.complete.tolist()

    def test_as_complete_requires_ground_truth(self):
        ds = make_dataset(complete=None)
        with pytest.raises(DatasetError):
            ds.as_complete()

    def test_from_complete_round_trip(self):
        complete = np.array([[0, 1], [2, 2]])
        mask = np.array([[True, False], [False, False]])
        ds = from_complete(complete, mask, [3, 3])
        assert ds.values[0, 0] == MISSING
        assert ds.values[0, 1] == 1
        assert ds.true_value(0, 0) == 0

    def test_from_complete_shape_mismatch(self):
        with pytest.raises(DatasetError):
            from_complete(np.zeros((2, 2)), np.zeros((3, 2), dtype=bool), [1, 1])
