"""Tests for Get-CTable (Algorithm 2)."""

import numpy as np
import pytest

from repro.ctable import Condition, build_ctable, var_greater_const
from repro.datasets import MISSING, IncompleteDataset
from repro.skyline import skyline


def dataset_from_rows(rows, domain=6):
    values = np.array(rows)
    return IncompleteDataset(values=values, domain_sizes=[domain] * values.shape[1])


class TestConstantConditions:
    def test_empty_dominator_set_is_true(self, movies_ctable):
        # o2 and o3 have empty dominator sets (Table 4) -> true (Table 3).
        assert movies_ctable.condition(1).is_true
        assert movies_ctable.condition(2).is_true

    def test_complete_pair_domination_is_false(self):
        ds = dataset_from_rows([[1, 1], [2, 2], [MISSING, 3]])
        ct = build_ctable(ds, alpha=1.0)
        assert ct.condition(0).is_false  # o2 dominates o1 outright

    def test_equal_complete_rows_do_not_eliminate(self):
        ds = dataset_from_rows([[2, 2], [2, 2]])
        ct = build_ctable(ds, alpha=1.0)
        assert ct.condition(0).is_true
        assert ct.condition(1).is_true

    def test_complete_dataset_matches_skyline(self, nba_small):
        full = nba_small.as_complete()
        ct = build_ctable(full, alpha=1.0)
        answers = [o for o in range(full.n_objects) if ct.condition(o).is_true]
        assert answers == skyline(full.values)
        assert not ct.has_open_expressions()


class TestAlphaPruning:
    def test_alpha_disables_with_one(self, movies):
        ct = build_ctable(movies, alpha=1.0)
        assert not ct.pruned

    def test_small_alpha_prunes_heavily_dominated(self):
        # o1 has 3 potential dominators out of 4 objects: alpha=0.5 prunes it.
        ds = dataset_from_rows(
            [
                [1, MISSING],
                [2, MISSING],
                [3, MISSING],
                [4, MISSING],
            ]
        )
        ct = build_ctable(ds, alpha=0.5)
        assert 0 in ct.pruned
        assert ct.condition(0).is_false
        # The top object has no dominator and stays unpruned.
        assert 3 not in ct.pruned

    def test_pruned_objects_counted_as_non_answers(self):
        ds = dataset_from_rows(
            [[1, MISSING], [2, MISSING], [3, MISSING], [4, MISSING]]
        )
        ct = build_ctable(ds, alpha=0.5)
        assert set(ct.certain_non_answers()) >= ct.pruned

    def test_invalid_alpha(self, movies):
        with pytest.raises(ValueError):
            build_ctable(movies, alpha=0.0)


class TestClauseGeneration:
    def test_paper_table3_condition_o1(self, movies_ctable):
        # phi(o1) = Var(o5,a2)<2 v Var(o5,a3)<3 v Var(o5,a4)<4.
        from repro.ctable import const_greater_var

        expected = Condition.of(
            [[const_greater_var(2, 4, 1), const_greater_var(3, 4, 2), const_greater_var(4, 4, 3)]]
        )
        assert movies_ctable.condition(0) == expected

    def test_paper_table3_condition_o4(self, movies_ctable):
        from repro.ctable import const_greater_var

        expected = Condition.of(
            [
                [const_greater_var(3, 1, 1)],
                [
                    const_greater_var(3, 4, 1),
                    const_greater_var(1, 4, 2),
                    const_greater_var(2, 4, 3),
                ],
            ]
        )
        assert movies_ctable.condition(3) == expected

    def test_paper_table3_condition_o5(self, movies_ctable):
        from repro.ctable import Expression, Var, var_greater_const

        expected = Condition.of(
            [
                [
                    var_greater_const(4, 1, 2),
                    var_greater_const(4, 2, 3),
                    var_greater_const(4, 3, 4),
                ],
                [
                    Expression(Var(4, 1), Var(1, 1)),
                    var_greater_const(4, 2, 2),
                    var_greater_const(4, 3, 2),
                ],
            ]
        )
        assert movies_ctable.condition(4) == expected

    def test_both_observed_disjuncts_never_appear(self, nba_small):
        ct = build_ctable(nba_small, alpha=1.0)
        for o in ct.undecided():
            for expression in ct.condition(o).expressions():
                assert expression.variables(), "expressions must involve a variable"

    def test_condition_variables_are_missing_cells(self, nba_small):
        ct = build_ctable(nba_small, alpha=1.0)
        missing = set(nba_small.variables())
        for o in ct.undecided():
            assert ct.condition(o).variables() <= missing


class TestSemanticSoundness:
    def test_condition_truth_matches_ground_truth_skyline(self, nba_small):
        """Evaluating phi(o) on the true missing values = true skyline membership.

        This is the key invariant of the c-table model: the condition is
        satisfied by the real (hidden) values exactly when the object is a
        skyline member of the complete data.  (alpha pruning is off.)
        """
        ct = build_ctable(nba_small, alpha=1.0)
        truth = set(skyline(nba_small.complete))
        assignment = {
            v: nba_small.true_value(*v) for v in nba_small.variables()
        }
        for o in range(nba_small.n_objects):
            assert ct.condition(o).evaluate(assignment) == (o in truth)

    def test_semantic_soundness_on_synthetic(self, synthetic_small):
        """On tie-heavy domains the encoding is sound one way.

        ``phi(o)`` true under the real values always implies skyline
        membership.  The converse can fail only through the documented
        all-equal-tie imprecision of the paper's CNF (a clause for an exact
        duplicate of ``o`` reads as domination): verify every mismatch is
        such a tie.
        """
        ct = build_ctable(synthetic_small, alpha=1.0)
        complete = synthetic_small.complete
        truth = set(skyline(complete))
        assignment = {
            v: synthetic_small.true_value(*v) for v in synthetic_small.variables()
        }
        for o in range(synthetic_small.n_objects):
            satisfied = ct.condition(o).evaluate(assignment)
            if satisfied:
                assert o in truth
            elif o in truth:
                # Must be explained by an exact duplicate row of o.
                duplicates = (complete == complete[o]).all(axis=1).sum()
                assert duplicates > 1

    def test_dominator_methods_build_identical_ctables(self, synthetic_small):
        fast = build_ctable(synthetic_small, alpha=1.0, dominator_method="fast")
        slow = build_ctable(synthetic_small, alpha=1.0, dominator_method="baseline")
        assert fast.conditions == slow.conditions


class TestPossibleWorldSemantics:
    def test_condition_probability_equals_world_enumeration(self):
        """On a tiny dataset, Pr(phi(o)) under independent uniform variables
        must equal the fraction of possible worlds (weighted) in which o is
        a skyline member -- the c-table's defining property, checked
        end-to-end through construction + ADPLL.

        Worlds where o survives only through the all-equal-tie caveat are
        counted by the condition as non-members (documented imprecision),
        so the test dataset is built without duplicate-prone rows.
        """
        import itertools

        from repro.bayesnet.posteriors import uniform_distributions
        from repro.probability import DistributionStore, ProbabilityEngine

        values = np.array(
            [
                [2, MISSING, 1],
                [MISSING, 2, 2],
                [1, 3, MISSING],
                [3, 0, 0],
            ]
        )
        ds = IncompleteDataset(values=values, domain_sizes=[4, 4, 4])
        ct = build_ctable(ds, alpha=1.0)
        store = DistributionStore(uniform_distributions(ds), ct.constraints)
        engine = ProbabilityEngine(store)

        variables = sorted(ds.variables())
        world_membership = {o: 0.0 for o in range(ds.n_objects)}
        n_worlds = 0
        for assignment_values in itertools.product(range(4), repeat=len(variables)):
            n_worlds += 1
            world = ds.values.copy()
            for variable, value in zip(variables, assignment_values):
                world[variable] = value
            members = set(skyline(world))
            # Skip tie-flavoured worlds: an exact duplicate pair makes the
            # CNF semantics diverge from Definition 1 by design.
            has_duplicates = len({tuple(row) for row in world}) < len(world)
            if has_duplicates:
                # The condition counts a duplicated o as eliminated.
                members = {
                    o
                    for o in members
                    if not any(
                        (world[p] == world[o]).all() for p in range(len(world)) if p != o
                    )
                }
            for o in members:
                world_membership[o] += 1.0
        for o in range(ds.n_objects):
            expected = world_membership[o] / n_worlds
            actual = engine.probability(ct.condition(o))
            assert actual == pytest.approx(expected, abs=1e-9), "object %d" % o
