"""Tests for task selection: object ranking and FBS / UBS / HHS."""

import itertools
from collections import Counter

import numpy as np
import pytest

from repro.core import (
    FrequencyStrategy,
    HybridStrategy,
    SelectionContext,
    UtilityEngine,
    UtilityStrategy,
    expression_frequencies,
    make_strategy,
    rank_objects,
    select_top_k,
)
from repro.core.strategies import _frequency_order
from repro.ctable import Condition, var_greater_const
from repro.probability import DistributionStore, ProbabilityEngine

V, W, U = (0, 0), (1, 0), (2, 0)
EV = var_greater_const(0, 0, 1)
EW = var_greater_const(1, 0, 1)
EU = var_greater_const(2, 0, 1)


def make_engine():
    pmf = np.full(4, 0.25)
    return ProbabilityEngine(DistributionStore({V: pmf, W: pmf.copy(), U: pmf.copy()}))


class TestRanking:
    def test_rank_by_entropy(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        ranked = rank_objects(movies_ctable, engine)
        # Entropies: H(o1)=0.72 > H(o5)=0.67 > H(o4)=0.62 (Example 4).
        assert [r.obj for r in ranked] == [0, 4, 3]

    def test_select_top_k(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        top2 = select_top_k(movies_ctable, engine, 2)
        assert [r.obj for r in top2] == [0, 4]
        assert select_top_k(movies_ctable, engine, 0) == []

    def test_constant_conditions_excluded(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        objs = {r.obj for r in rank_objects(movies_ctable, engine)}
        assert 1 not in objs and 2 not in objs


class TestExpressionFrequencies:
    def test_counts_across_conditions(self):
        c1 = Condition.of([[EV, EW]])
        c2 = Condition.of([[EV], [EU]])
        counts = expression_frequencies([c1, c2])
        assert counts[EV] == 2
        assert counts[EW] == 1
        assert counts[EU] == 1

    def test_repeats_within_condition_count(self):
        c = Condition.of([[EV, EW], [EV, EU]])
        assert expression_frequencies([c])[EV] == 2


class TestFBS:
    def test_picks_most_frequent(self):
        engine = make_engine()
        condition = Condition.of([[EV, EW]])
        context = SelectionContext(engine=engine)
        context.frequencies.update({EV: 1, EW: 5})
        chosen = FrequencyStrategy().select_expression(condition, context, set())
        assert chosen == EW

    def test_respects_banned_variables(self):
        engine = make_engine()
        condition = Condition.of([[EV, EW]])
        context = SelectionContext(engine=engine)
        context.frequencies.update({EV: 1, EW: 5})
        chosen = FrequencyStrategy().select_expression(condition, context, {W})
        assert chosen == EV

    def test_returns_none_when_everything_banned(self):
        engine = make_engine()
        condition = Condition.of([[EV]])
        chosen = FrequencyStrategy().select_expression(
            condition, SelectionContext(engine=engine), {V}
        )
        assert chosen is None

    def test_no_utility_evaluations(self):
        engine = make_engine()
        condition = Condition.of([[EV, EW]])
        context = SelectionContext(engine=engine)
        FrequencyStrategy().select_expression(condition, context, set())
        assert context.utility_evaluations == 0


class TestUBS:
    def test_picks_highest_utility(self, movies_ctable, movies_store):
        """On phi(o1), Example 4 gives e3 the top utility (0.322)."""
        from repro.ctable import const_greater_var

        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(0)
        chosen = UtilityStrategy().select_expression(
            condition, SelectionContext(engine=engine), set()
        )
        assert chosen == const_greater_var(4, 4, 3)  # Var(o5, a4) < 4

    def test_evaluates_every_candidate(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(0)
        context = SelectionContext(engine=engine)
        UtilityStrategy().select_expression(condition, context, set())
        assert context.utility_evaluations == 3


class TestHHS:
    def test_matches_ubs_with_large_m(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        context_u = SelectionContext(engine=engine)
        context_h = SelectionContext(engine=engine)
        for obj in movies_ctable.undecided():
            condition = movies_ctable.condition(obj)
            expected = UtilityStrategy().select_expression(condition, context_u, set())
            actual = HybridStrategy(m=100).select_expression(condition, context_h, set())
            assert actual == expected

    def test_early_stop_limits_evaluations(self):
        engine = make_engine()
        # Many independent expressions, all with identical utility: after the
        # first, m consecutive non-improvements stop the scan.
        exprs = [var_greater_const(o, 0, 1) for o in range(3)]
        pmf = np.full(4, 0.25)
        engine = ProbabilityEngine(
            DistributionStore({(o, 0): pmf.copy() for o in range(3)})
        )
        condition = Condition.of([[e] for e in exprs])
        context = SelectionContext(engine=engine)
        HybridStrategy(m=1).select_expression(condition, context, set())
        assert context.utility_evaluations == 2  # first + one miss

    def test_rejects_bad_m(self):
        with pytest.raises(ValueError):
            HybridStrategy(m=0)


class TestFrequencyOrderDeterminism:
    """Regression: equal-frequency ties used to depend on input order."""

    def test_ties_break_on_canonical_sort_key(self):
        expressions = [EU, EV, EW]
        frequencies = Counter({EV: 3, EW: 3, EU: 3})
        expected = sorted(expressions, key=lambda e: e.sort_key())
        for permutation in itertools.permutations(expressions):
            assert _frequency_order(list(permutation), frequencies) == expected

    def test_frequency_still_dominates_sort_key(self):
        frequencies = Counter({EV: 1, EW: 5, EU: 3})
        assert _frequency_order([EV, EW, EU], frequencies) == [EW, EU, EV]

    def test_fbs_pick_independent_of_counter_insertion_order(self):
        engine = make_engine()
        condition = Condition.of([[EV, EW, EU]])
        picks = set()
        for order in itertools.permutations([EV, EW, EU]):
            context = SelectionContext(engine=engine)
            context.frequencies.update({e: 2 for e in order})
            picks.add(FrequencyStrategy().select_expression(condition, context, set()))
        assert len(picks) == 1


class TestSkipAccounting:
    def test_certain_condition_counts_as_skipped_not_evaluated(self):
        engine = ProbabilityEngine(
            DistributionStore({V: np.array([0.0, 1.0]), W: np.array([0.0, 1.0])})
        )
        # Both expressions hold with probability 1, so H(o) == 0 and the
        # scalar loop should skip every candidate without ADPLL work.
        condition = Condition.of(
            [[var_greater_const(0, 0, 0)], [var_greater_const(1, 0, 0)]]
        )
        context = SelectionContext(engine=engine)
        chosen = UtilityStrategy().select_expression(condition, context, set())
        assert chosen is not None
        assert context.utility_evaluations == 0
        assert context.utility_skipped == 2
        assert context.probability_requests == 1  # only the H(o) probe

    def test_scalar_path_counts_probability_requests(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(0)
        context = SelectionContext(engine=engine)
        UtilityStrategy().select_expression(condition, context, set())
        # One H(o) probe plus base + two residual lookups per candidate.
        assert context.probability_requests == 1 + 3 * context.utility_evaluations
        assert context.probability_computed > 0


class TestBatchedStrategyParity:
    """With a UtilityEngine in the context, UBS/HHS pick identical tasks."""

    @pytest.mark.parametrize("make", [UtilityStrategy, lambda: HybridStrategy(m=2)])
    def test_same_picks_with_and_without_scorer(
        self, make, movies_ctable, movies_store
    ):
        scalar_engine = ProbabilityEngine(movies_store)
        batched_engine = ProbabilityEngine(movies_store)
        conditions = [movies_ctable.condition(o) for o in movies_ctable.undecided()]
        frequencies = expression_frequencies(conditions)
        scalar_context = SelectionContext(engine=scalar_engine)
        scalar_context.frequencies = frequencies
        batched_context = SelectionContext(
            engine=batched_engine,
            utility_engine=UtilityEngine(batched_engine),
        )
        batched_context.frequencies = frequencies
        strategy = make()
        strategy.prefetch_round(conditions, batched_context, set())
        for condition in conditions:
            assert strategy.select_expression(
                condition, batched_context, set()
            ) == strategy.select_expression(condition, scalar_context, set())

    def test_prefetched_walk_serves_from_cache(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        scorer = UtilityEngine(engine)
        conditions = [movies_ctable.condition(o) for o in movies_ctable.undecided()]
        context = SelectionContext(engine=engine, utility_engine=scorer)
        context.frequencies = expression_frequencies(conditions)
        strategy = UtilityStrategy()
        strategy.prefetch_round(conditions, context, set())
        evals_after_prefetch = scorer.evals_total
        for condition in conditions:
            strategy.select_expression(condition, context, set())
        assert scorer.evals_total == evals_after_prefetch
        assert scorer.cache_hits > 0


class TestFactory:
    def test_names(self):
        assert make_strategy("fbs").name == "fbs"
        assert make_strategy("UBS").name == "ubs"
        hhs = make_strategy("hhs", m=7)
        assert hhs.name == "hhs"
        assert hhs.m == 7

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_strategy("magic")
