"""Tests for post-hoc run analysis."""

from repro import BayesCrowd, BayesCrowdConfig, generate_nba, skyline
from repro.analysis import (
    accuracy_trajectory,
    analyze_run,
    classify_expressions,
    task_type_breakdown,
)
from repro.crowd import SimulatedCrowdPlatform
from repro.ctable import var_greater_const, var_greater_var


class TestClassification:
    def test_breakdown(self):
        expressions = [
            var_greater_const(0, 0, 1),
            var_greater_var(0, 1, 0),
            var_greater_const(2, 0, 3),
        ]
        breakdown = classify_expressions(expressions)
        assert breakdown.var_vs_const == 2
        assert breakdown.var_vs_var == 1
        assert breakdown.total == 3


class TestAnalyzeRun:
    def _run(self):
        import numpy as np

        dataset = generate_nba(n_objects=120, missing_rate=0.12, seed=5)
        platform = SimulatedCrowdPlatform(dataset, rng=np.random.default_rng(0))
        config = BayesCrowdConfig(alpha=0.08, budget=24, latency=4, seed=5)
        result = BayesCrowd(dataset, config, platform=platform).run()
        return result, platform

    def test_analysis_fields(self):
        result, __ = self._run()
        analysis = analyze_run(result)
        assert analysis.tasks_posted == result.tasks_posted
        assert analysis.rounds == result.rounds
        assert sum(analysis.tasks_per_round) == result.tasks_posted
        assert 0.0 <= analysis.modeling_share <= 1.0
        assert sum(analysis.attention.values()) == sum(
            len(r.objects) for r in result.history
        )

    def test_summary_lines(self):
        result, __ = self._run()
        lines = analyze_run(result).summary_lines()
        assert any("tasks:" in line for line in lines)
        assert any("open conditions" in line for line in lines)

    def test_task_log_breakdown(self):
        result, platform = self._run()
        assert len(platform.task_log) == result.tasks_posted
        breakdown = task_type_breakdown(result, platform.task_log)
        assert breakdown.total == result.tasks_posted

    def test_zero_round_run(self):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=5)
        config = BayesCrowdConfig(alpha=0.08, budget=0)
        result = BayesCrowd(dataset, config).run()
        analysis = analyze_run(result)
        assert analysis.rounds == 0
        assert analysis.attention == {}


class TestAccuracyTrajectory:
    def test_monotone_budget_points(self):
        dataset = generate_nba(n_objects=120, missing_rate=0.12, seed=6)
        truth = skyline(dataset.complete)
        config = BayesCrowdConfig(alpha=0.08, budget=20, latency=4, seed=6)
        trajectory = accuracy_trajectory(dataset, config, truth)
        budgets = [point["budget"] for point in trajectory]
        assert budgets == sorted(budgets)
        assert budgets[0] == 0.0
        assert all(0.0 <= point["f1"] <= 1.0 for point in trajectory)
        # spending the full budget is at least as good as spending nothing
        assert trajectory[-1]["f1"] >= trajectory[0]["f1"] - 1e-9

    def test_explicit_checkpoints(self):
        dataset = generate_nba(n_objects=80, missing_rate=0.1, seed=6)
        truth = skyline(dataset.complete)
        config = BayesCrowdConfig(alpha=0.08, budget=10, latency=2, seed=6)
        trajectory = accuracy_trajectory(dataset, config, truth, checkpoints=[0, 10])
        assert len(trajectory) == 2
