"""Tests for the circuit-forest array kernel (PR-9 tentpole).

Covers kernel-mode resolution (numba gating), hypothesis parity of the
numpy structure-of-arrays sweep against the per-circuit interpreter over
random conditions *and* answer sequences, suffix propagation, masked
worker sweeps (``evaluate_roots``), the shared-memory array round-trip,
and the engine-level forest backend (batched rounds, precompile,
pool fan-out).
"""

import numpy as np
import pytest
from hypothesis import given, settings

from repro.ctable import Condition, Relation, VariableConstraints, var_greater_const
from repro.probability import (
    HAS_NUMBA,
    KERNEL_MODES,
    CircuitForest,
    ForestProgram,
    ProbabilityEngine,
    compile_condition,
    naive_probability,
    resolve_kernel,
)
from repro.probability.engine import _forest_chunk
from repro.parallel import SharedArrayBundle, detach_all

from tests.test_compile import (
    branching_condition,
    condition_store_answers,
    uniform_store,
)


class TestKernelResolution:
    def test_known_modes(self):
        assert set(KERNEL_MODES) == {"auto", "numpy", "numba", "python"}
        assert resolve_kernel("numpy") == "numpy"
        assert resolve_kernel("python") == "python"

    def test_auto_defaults_to_numpy(self, monkeypatch):
        monkeypatch.delenv("REPRO_FOREST_JIT", raising=False)
        assert resolve_kernel("auto") == "numpy"

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernel("magic")
        with pytest.raises(ValueError):
            CircuitForest(uniform_store(), kernel="magic")

    @pytest.mark.skipif(HAS_NUMBA, reason="numba installed")
    def test_numba_request_without_numba_rejected(self):
        with pytest.raises(ValueError) as err:
            resolve_kernel("numba")
        assert "not installed" in str(err.value)
        with pytest.raises(ValueError):
            ProbabilityEngine(
                uniform_store(constraints=VariableConstraints([4])),
                backend="forest",
                kernel="numba",
            )

    @pytest.mark.skipif(not HAS_NUMBA, reason="numba not installed")
    def test_auto_opts_into_numba(self, monkeypatch):  # pragma: no cover
        monkeypatch.setenv("REPRO_FOREST_JIT", "1")
        assert resolve_kernel("auto") == "numba"


class TestJitGateDegradesCleanly:
    """``REPRO_FOREST_JIT`` without numba: a clear error at config time,
    never a worker crash (the worker-facing 'auto' path keeps numpy)."""

    @pytest.fixture
    def no_numba(self, monkeypatch):
        from repro.probability import kernel as kernel_module

        monkeypatch.setattr(kernel_module, "HAS_NUMBA", False)
        monkeypatch.setenv("REPRO_FOREST_JIT", "1")

    def test_gate_raises_config_error(self, no_numba):
        from repro.errors import ConfigError
        from repro.probability.kernel import validate_jit_gate

        with pytest.raises(ConfigError) as err:
            validate_jit_gate()
        assert "numba is not installed" in str(err.value)
        assert "REPRO_FOREST_JIT" in str(err.value)

    def test_forest_backend_config_fails_fast(self, no_numba):
        from repro.core import BayesCrowdConfig
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BayesCrowdConfig(probability_backend="forest")
        # Other backends never consult the JIT gate.
        assert BayesCrowdConfig(probability_backend="adpll").seed == 0

    def test_service_settings_fail_fast(self, no_numba, tmp_path):
        from repro.errors import ConfigError
        from repro.service import ServiceSettings

        with pytest.raises(ConfigError):
            ServiceSettings(port=0, data_dir=tmp_path)

    def test_worker_auto_path_never_crashes(self, no_numba):
        # Even with the bad env var set, the in-worker resolution keeps
        # the numpy fallback -- the failure belongs to config time only.
        assert resolve_kernel("auto") == "numpy"

    def test_gate_is_silent_when_disarmed(self, monkeypatch):
        from repro.probability import kernel as kernel_module
        from repro.probability.kernel import validate_jit_gate

        monkeypatch.setattr(kernel_module, "HAS_NUMBA", False)
        for value in (None, "0", ""):
            if value is None:
                monkeypatch.delenv("REPRO_FOREST_JIT", raising=False)
            else:
                monkeypatch.setenv("REPRO_FOREST_JIT", value)
            validate_jit_gate()  # must not raise


def make_forest(kernel="numpy", domain=4, **kwargs):
    constraints = VariableConstraints([domain])
    store = uniform_store(domain=domain, constraints=constraints)
    return CircuitForest(store, kernel=kernel, **kwargs), store, constraints


class TestKernelParity:
    """The array sweep must match the per-circuit interpreter exactly."""

    @given(condition_store_answers())
    @settings(max_examples=120, deadline=None)
    def test_numpy_kernel_matches_interpreter(self, drawn):
        condition, store, constraints, answers = drawn
        if condition.is_constant:
            return
        forest = CircuitForest(store, kernel="numpy")
        circuit = compile_condition(condition, store)
        assert forest.probability(condition) == pytest.approx(
            circuit.evaluate(store), abs=1e-9
        )

    @given(condition_store_answers())
    @settings(max_examples=80, deadline=None)
    def test_propagate_tracks_answer_sequences(self, drawn):
        """Suffix re-sweeps after each answer match a fresh interpreter."""
        condition, store, constraints, answers = drawn
        if condition.is_constant:
            return
        forest = CircuitForest(store, kernel="numpy")
        forest.probability(condition)
        for expression, relation in answers:
            try:
                constraints.apply_answer(expression, relation)
            except ValueError:
                continue  # contradicting sequence; constraints refuse
            exact = naive_probability(condition, store)
            assert forest.probability(condition) == pytest.approx(exact, abs=1e-9)

    @pytest.mark.parametrize("kernel", ["numpy", "python"])
    def test_kernels_agree_on_shared_forest(self, kernel):
        forest, store, constraints = make_forest(kernel=kernel)
        conditions = [branching_condition()] + [
            Condition.of([[var_greater_const(o, 0, c)]])
            for o in range(3)
            for c in (1, 2)
        ]
        for condition in conditions:
            assert forest.probability(condition) == pytest.approx(
                naive_probability(condition, store), abs=1e-9
            )
        constraints.apply_answer(var_greater_const(0, 0, 1), Relation.GREATER)
        for condition in conditions:
            assert forest.probability(condition) == pytest.approx(
                naive_probability(condition, store), abs=1e-9
            )
        assert forest.stats()["recompiles"] == 0


class TestForestProgram:
    def registered_forest(self):
        forest, store, constraints = make_forest()
        conditions = [branching_condition()] + [
            Condition.of(
                [
                    [var_greater_const(o, 0, 1)],
                    [var_greater_const((o + 1) % 3, 0, 2)],
                ]
            )
            for o in range(3)
        ]
        roots = [forest.register(c) for c in conditions]
        forest.refresh()
        return forest, store, conditions, roots

    def test_masked_roots_match_full_sweep(self):
        forest, store, conditions, roots = self.registered_forest()
        program = forest.ensure_program()
        pmf_flat = program.gather_pmfs(store)
        full = program.evaluate(
            np.zeros(program.n_slots), pmf_flat
        )
        subset = roots[::2]
        masked = program.evaluate_roots(subset, pmf_flat)
        for root in subset:
            assert masked[root] == pytest.approx(full[root], abs=1e-12)

    def test_array_roundtrip_preserves_values(self):
        forest, store, conditions, roots = self.registered_forest()
        program = forest.ensure_program()
        pmf_flat = program.gather_pmfs(store)
        arrays = program.to_arrays()
        rebuilt = ForestProgram.from_arrays(arrays)
        original = program.evaluate_roots(roots, pmf_flat)
        copy = rebuilt.evaluate_roots(roots, np.array(pmf_flat))
        for root in roots:
            assert copy[root] == pytest.approx(original[root], abs=1e-12)

    def test_from_arrays_copies_out_of_shared_buffers(self):
        """Workers must survive the parent unlinking the segments."""
        forest, store, conditions, roots = self.registered_forest()
        program = forest.ensure_program()
        arrays = dict(program.to_arrays())
        arrays["leaf_pmf_flat"] = program.gather_pmfs(store)
        bundle = SharedArrayBundle.publish(arrays)
        try:
            payload = (bundle.handle, roots)
            values = _forest_chunk(payload)
        finally:
            bundle.unlink()
            detach_all()
        full = program.evaluate(
            np.zeros(program.n_slots), program.gather_pmfs(store)
        )
        assert values == pytest.approx([full[r] for r in roots], abs=1e-12)

    def test_suffix_sweep_equals_full_resweep(self):
        forest, store, conditions, roots = self.registered_forest()
        # grow the forest after the first sweep: refresh must cover the
        # new suffix without disturbing (or needing) the old prefix
        extra = Condition.of([[var_greater_const(2, 0, 2)]])
        forest.probability(extra)
        fresh = CircuitForest(store, kernel="numpy")
        for condition in conditions + [extra]:
            assert forest.value(condition) == pytest.approx(
                fresh.probability(condition), abs=1e-12
            )
        assert forest.stats()["forest_suffix_sweeps"] >= 1


class TestEngineForestBackend:
    def make_engine(self, **kwargs):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        return ProbabilityEngine(store, backend="forest", **kwargs), store, constraints

    def conditions(self):
        return [branching_condition()] + [
            Condition.of([[var_greater_const(o % 3, 0, c)]])
            for o in range(3)
            for c in range(3)
        ]

    def test_batch_rounds_match_adpll(self):
        engine, store, constraints = self.make_engine()
        plain = ProbabilityEngine(
            uniform_store(constraints=constraints)
        )
        conditions = self.conditions()
        for cut, obj in ((None, None), (1, 0), (0, 1), (2, 2)):
            if cut is not None:
                constraints.apply_answer(
                    var_greater_const(obj, 0, cut), Relation.GREATER
                )
            got = engine.probability_many(conditions)
            want = [naive_probability(c, store) for c in conditions]
            assert got == pytest.approx(want, abs=1e-9)
        stats = engine.stats()
        assert stats["probability_backend"] == "forest"
        assert stats["recompiles"] == 0
        assert stats["compile_fallbacks"] == 0
        assert stats["nodes_shared"] > 0
        assert 0.0 < stats["shared_fraction"] < 1.0

    def test_precompile_then_batch_compiles_nothing_new(self):
        engine, store, constraints = self.make_engine(use_cache=False)
        conditions = self.conditions()
        compiled = engine.precompile_many(conditions)
        assert compiled == len(set(conditions))
        before = engine.stats()["circuits_compiled"]
        values = engine.probability_many(conditions)
        assert engine.stats()["circuits_compiled"] == before
        assert values == pytest.approx(
            [naive_probability(c, store) for c in conditions], abs=1e-9
        )

    def test_precompile_noop_on_other_backends(self):
        constraints = VariableConstraints([4])
        engine = ProbabilityEngine(uniform_store(constraints=constraints))
        assert engine.precompile_many(self.conditions()) == 0

    def test_budget_trip_falls_back_exactly(self):
        engine, store, constraints = self.make_engine(compile_node_budget=4)
        conditions = self.conditions()
        values = engine.probability_many(conditions)
        assert values == pytest.approx(
            [naive_probability(c, store) for c in conditions], abs=1e-9
        )
        assert engine.stats()["compile_fallbacks"] >= 1

    def test_pool_fan_out_matches_sequential(self):
        engine, store, constraints = self.make_engine()
        conditions = self.conditions()
        sequential = engine.probability_many(conditions)
        pooled_engine, pooled_store, __ = self.make_engine(n_jobs=2)
        roots = {c: pooled_engine._forest.register(c) for c in conditions}
        pooled = pooled_engine._sweep_parallel_forest(roots, 2, 4)
        assert [pooled[c] for c in conditions] == pytest.approx(
            sequential, abs=1e-12
        )
        assert pooled_engine.forest_bundle_bytes > 0
        assert pooled_engine.stats()["parallel_chunks"] >= 2

    def test_scalar_and_cached_pool_decisions_recorded(self):
        engine, store, constraints = self.make_engine()
        condition = branching_condition()
        engine.probability(condition)
        assert "scalar" in engine.stats()["pool_decision"]
        engine.probability_many([condition])
        first = engine.stats()["pool_decision"]
        assert "no batch computed yet" not in first
        engine.probability_many([condition])  # fully cache-served
        assert "cache" in engine.stats()["pool_decision"]
