"""Regression tests for the paper's headline *shapes* at tiny scale.

EXPERIMENTS.md records the full-scale outcomes; these tests pin the
relative claims that must never silently regress, at sizes small enough
for CI.  Each test name cites the figure it guards.
"""

from repro import BayesCrowd, BayesCrowdConfig, f1_score, skyline
from repro.baselines import CrowdSky
from repro.bayesnet.posteriors import empirical_distributions
from repro.ctable import build_ctable
from repro.datasets import generate_nba
from repro.experiments.data import dataset_with_distributions
from repro.metrics import time_call
from repro.probability import ADPLL, DistributionStore, naive_probability


class TestFig2Shape:
    def test_get_ctable_beats_baseline(self):
        dataset = generate_nba(n_objects=250, missing_rate=0.1, seed=1)
        __, fast = time_call(build_ctable, dataset, 0.05, "fast")
        __, slow = time_call(build_ctable, dataset, 0.05, "baseline")
        assert fast < slow


class TestFig3Shape:
    def test_adpll_beats_naive(self):
        dataset = generate_nba(n_objects=150, missing_rate=0.1, seed=1)
        ctable = build_ctable(dataset, alpha=0.02)
        store = DistributionStore(
            empirical_distributions(dataset), ctable.constraints
        )
        conditions = []
        for obj in ctable.undecided():
            condition = ctable.condition(obj)
            space = 1
            for variable in condition.variables():
                space *= dataset.domain_sizes[variable[1]]
            if space <= 50_000:
                conditions.append(condition)
        assert conditions, "need at least one enumerable condition"
        solver = ADPLL(store)
        __, adpll_s = time_call(lambda: [solver.probability(c) for c in conditions])
        __, naive_s = time_call(
            lambda: [naive_probability(c, store) for c in conditions]
        )
        assert adpll_s < naive_s


class TestFig4Shape:
    def test_bayescrowd_needs_fewer_tasks_and_rounds_than_crowdsky(self):
        dataset, distributions = dataset_with_distributions("crowdsky", 120)
        truth = skyline(dataset.complete)
        config = BayesCrowdConfig(
            alpha=0.05, budget=480, latency=24, strategy="hhs", seed=0
        )
        ours = BayesCrowd(dataset, config, distributions=distributions).run()
        theirs = CrowdSky(dataset, tasks_per_round=20, seed=0).run()
        assert ours.tasks_posted < theirs.tasks_posted
        assert ours.rounds < theirs.rounds
        assert f1_score(ours.answers, truth) >= 0.95
        assert f1_score(theirs.answers, truth) >= 0.95


class TestFig6Shape:
    def test_accuracy_falls_with_missing_rate(self):
        scores = []
        for rate in (0.05, 0.2):
            dataset = generate_nba(n_objects=200, missing_rate=rate, seed=3)
            config = BayesCrowdConfig(alpha=0.05, budget=30, latency=3, seed=0)
            result = BayesCrowd(dataset, config).run()
            scores.append(f1_score(result.answers, skyline(dataset.complete)))
        assert scores[0] > scores[1]


class TestFig8Shape:
    def test_accuracy_rises_with_alpha(self):
        dataset = generate_nba(n_objects=200, missing_rate=0.1, seed=3)
        truth = skyline(dataset.complete)
        scores = []
        for alpha in (0.01, 0.15):
            config = BayesCrowdConfig(alpha=alpha, budget=30, latency=3, seed=0)
            result = BayesCrowd(dataset, config).run()
            scores.append(f1_score(result.answers, truth))
        assert scores[0] < scores[1]


class TestFig10Shape:
    def test_latency_insensitive_at_fixed_budget(self):
        dataset = generate_nba(n_objects=200, missing_rate=0.1, seed=3)
        truth = skyline(dataset.complete)
        scores = []
        for latency in (2, 10):
            config = BayesCrowdConfig(alpha=0.05, budget=30, latency=latency, seed=0)
            result = BayesCrowd(dataset, config).run()
            scores.append(f1_score(result.answers, truth))
        assert abs(scores[0] - scores[1]) < 0.1
