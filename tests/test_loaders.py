"""Tests for the CSV loader."""

import pytest

from repro.datasets import MISSING
from repro.datasets.loaders import load_csv


def write_csv(tmp_path, text, name="data.csv"):
    path = tmp_path / name
    path.write_text(text)
    return path


BASIC = """name,price,rating,reviews
hotel_a,100,4.5,200
hotel_b,,3.0,50
hotel_c,80,?,500
hotel_d,120,5.0,NA
hotel_e,60,2.0,10
"""


class TestLoadCsv:
    def test_basic_shapes(self, tmp_path):
        ds = load_csv(write_csv(tmp_path, BASIC), levels=3, id_column="name")
        assert ds.n_objects == 5
        assert ds.n_attributes == 3
        assert ds.attribute_names == ["price", "rating", "reviews"]
        assert ds.object_names[0] == "hotel_a"

    def test_missing_tokens_detected(self, tmp_path):
        ds = load_csv(write_csv(tmp_path, BASIC), levels=3, id_column="name")
        assert ds.is_missing(1, 0)  # empty price
        assert ds.is_missing(2, 1)  # "?"
        assert ds.is_missing(3, 2)  # "NA"
        assert ds.n_variables() == 3

    def test_discretization_monotone(self, tmp_path):
        ds = load_csv(write_csv(tmp_path, BASIC), levels=3, id_column="name")
        reviews = ds.values[:, 2]
        observed = [(10, 4), (50, 1), (200, 0), (500, 2)]  # (value, row)
        levels = {v: reviews[row] for v, row in observed}
        ordered = [levels[v] for v in sorted(levels)]
        assert ordered == sorted(ordered)

    def test_smaller_is_better_flips(self, tmp_path):
        ds = load_csv(
            write_csv(tmp_path, BASIC),
            levels=3,
            id_column="name",
            smaller_is_better=["price"],
        )
        price = ds.values[:, 0]
        # hotel_e (cheapest, 60) must get the best (highest) level among
        # observed prices; hotel_d (most expensive, 120) the lowest.
        assert price[4] == max(p for p in price if p != MISSING)
        assert price[3] == min(p for p in price if p != MISSING)

    def test_no_ground_truth(self, tmp_path):
        ds = load_csv(write_csv(tmp_path, BASIC), id_column="name")
        assert not ds.has_ground_truth()

    def test_default_object_names(self, tmp_path):
        text = "a,b\n1,2\n3,4\n"
        ds = load_csv(write_csv(tmp_path, text))
        assert ds.object_names == ["o1", "o2"]

    def test_header_only_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_csv(write_csv(tmp_path, "a,b\n"))

    def test_ragged_row_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_csv(write_csv(tmp_path, "a,b\n1,2,3\n"))

    def test_non_numeric_cell_rejected(self, tmp_path):
        with pytest.raises(ValueError):
            load_csv(write_csv(tmp_path, "a,b\n1,hello\n"))

    def test_unknown_id_column(self, tmp_path):
        with pytest.raises(ValueError):
            load_csv(write_csv(tmp_path, BASIC), id_column="magic")

    def test_unknown_flip_column(self, tmp_path):
        with pytest.raises(ValueError):
            load_csv(
                write_csv(tmp_path, BASIC), id_column="name", smaller_is_better=["x"]
            )

    def test_all_missing_column_rejected(self, tmp_path):
        text = "a,b\n1,?\n2,NA\n"
        with pytest.raises(ValueError):
            load_csv(write_csv(tmp_path, text))

    def test_loaded_dataset_queryable_with_external_platform(self, tmp_path):
        """A loaded CSV (no ground truth) still supports the modeling phase
        and machine-only inference."""
        from repro.baselines import machine_only_skyline
        from repro.core import BayesCrowdConfig

        ds = load_csv(write_csv(tmp_path, BASIC), levels=3, id_column="name")
        # alpha=1 disables pruning: with 5 objects, any fractional alpha
        # would prune every candidate with a single potential dominator.
        result = machine_only_skyline(
            ds, BayesCrowdConfig(alpha=1.0, distribution_source="empirical")
        )
        assert result.tasks_posted == 0
        assert result.answers  # something survives


class TestNonFiniteCells:
    @pytest.mark.parametrize("bad", ["inf", "-inf", "Infinity", "1e999"])
    def test_infinite_observed_cell_rejected(self, tmp_path, bad):
        from repro.errors import DataValidationError

        text = BASIC.replace("4.5", bad)
        with pytest.raises(DataValidationError) as excinfo:
            load_csv(write_csv(tmp_path, text), levels=3, id_column="name")
        assert "rating" in str(excinfo.value)

    def test_error_is_a_value_error(self, tmp_path):
        # Callers catching ValueError (the loader's historical contract)
        # must still catch the typed error.
        text = BASIC.replace("3.0", "inf")
        with pytest.raises(ValueError):
            load_csv(write_csv(tmp_path, text), levels=3, id_column="name")

    def test_nan_spelling_is_missing_not_error(self, tmp_path):
        # "nan" is a documented missing marker; it must never reach the
        # finiteness check.
        text = BASIC.replace("4.5", "NaN")
        ds = load_csv(write_csv(tmp_path, text), levels=3, id_column="name")
        assert ds.is_missing(0, 1)
