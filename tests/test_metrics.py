"""Unit tests for accuracy metrics and timing helpers."""

import time

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.metrics import Stopwatch, accuracy_report, f1_score, time_call


class TestAccuracy:
    def test_perfect(self):
        report = accuracy_report([1, 2, 3], [1, 2, 3])
        assert report.precision == 1.0
        assert report.recall == 1.0
        assert report.f1 == 1.0

    def test_empty_both(self):
        report = accuracy_report([], [])
        assert report.f1 == 1.0

    def test_empty_prediction(self):
        report = accuracy_report([], [1, 2])
        assert report.precision == 0.0
        assert report.recall == 0.0
        assert report.f1 == 0.0

    def test_partial(self):
        report = accuracy_report([1, 2], [2, 3])
        assert report.precision == pytest.approx(0.5)
        assert report.recall == pytest.approx(0.5)
        assert report.f1 == pytest.approx(0.5)

    def test_counts(self):
        report = accuracy_report([1, 2, 4], [2, 3])
        assert report.true_positives == 1
        assert report.false_positives == 2
        assert report.false_negatives == 1

    def test_duplicates_ignored(self):
        assert f1_score([1, 1, 2], [1, 2]) == 1.0

    @given(
        st.sets(st.integers(0, 30)),
        st.sets(st.integers(0, 30)),
    )
    def test_f1_bounds_and_symmetric_perfect(self, predicted, truth):
        report = accuracy_report(predicted, truth)
        assert 0.0 <= report.f1 <= 1.0
        assert 0.0 <= report.precision <= 1.0
        assert 0.0 <= report.recall <= 1.0
        if predicted == truth:
            assert report.f1 == 1.0

    @given(st.sets(st.integers(0, 30), min_size=1), st.sets(st.integers(0, 30), min_size=1))
    def test_f1_is_harmonic_mean(self, predicted, truth):
        report = accuracy_report(predicted, truth)
        p, r = report.precision, report.recall
        if p + r > 0:
            assert report.f1 == pytest.approx(2 * p * r / (p + r))


class TestTiming:
    def test_stopwatch_accumulates(self):
        watch = Stopwatch()
        with watch.section("a"):
            time.sleep(0.01)
        with watch.section("a"):
            pass
        assert watch.total("a") >= 0.01
        assert watch.count("a") == 2
        assert watch.labels() == ["a"]

    def test_stopwatch_unknown_label(self):
        watch = Stopwatch()
        assert watch.total("missing") == 0.0
        assert watch.count("missing") == 0

    def test_time_call(self):
        result, seconds = time_call(lambda x: x + 1, 41)
        assert result == 42
        assert seconds >= 0.0
