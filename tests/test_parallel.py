"""Tests for the shared-memory multiprocessing substrate (repro.parallel).

Covers the pool auto-selection policy (the fig03 fallback bug: pools must
never spawn on single-core hosts, above the usable cores, or for batches
too small to amortize startup), the shared-array publish/attach
round-trip, and order preservation of the sharded runner.
"""

import numpy as np
import pytest

from repro.parallel import (
    PoolDecision,
    SharedArrayBundle,
    attach_arrays,
    decide_workers,
    detach_all,
    run_sharded,
    usable_cpu_count,
)


def _square(shard):
    # module-level so the process pool can pickle it
    return [x * x for x in shard]


def _fail(shard):
    raise ValueError("worker exploded on %r" % (shard,))


class TestDecideWorkers:
    def test_n_jobs_one_is_sequential(self):
        decision = decide_workers(1, 1000, 1, cpu_count=8)
        assert decision.n_workers == 1
        assert not decision.parallel
        assert "requests no pool" in decision.reason

    def test_single_core_host_never_pools(self):
        decision = decide_workers(4, 1000, 1, cpu_count=1)
        assert decision.n_workers == 1
        assert "single usable core" in decision.reason

    def test_small_batch_stays_sequential(self):
        # 5 items cannot feed two workers at 8 items per worker
        decision = decide_workers(4, 5, 8, cpu_count=8)
        assert decision.n_workers == 1
        assert "below the 8-per-worker floor" in decision.reason

    def test_oversubscription_is_clamped(self):
        decision = decide_workers(8, 1000, 1, cpu_count=4)
        assert decision.n_workers == 4
        assert decision.parallel
        assert "clamped to 4 usable cores" in decision.reason

    def test_zero_means_one_per_core(self):
        decision = decide_workers(0, 1000, 1, cpu_count=4)
        assert decision.n_workers == 4
        assert decision.parallel

    def test_plain_parallel(self):
        decision = decide_workers(2, 1000, 1, cpu_count=4)
        assert decision == PoolDecision(2, "parallel: 2 workers")

    def test_work_limits_workers(self):
        # 20 items at 8 per worker feed at most 2 workers, not 4
        decision = decide_workers(4, 20, 8, cpu_count=8)
        assert decision.n_workers == 2

    def test_usable_cpu_count_positive(self):
        assert usable_cpu_count() >= 1


class TestSharedArrays:
    def test_publish_attach_roundtrip(self):
        arrays = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.linspace(0.0, 1.0, 7),
            "empty": np.zeros((0, 3), dtype=np.float64),
        }
        bundle = SharedArrayBundle.publish(arrays)
        try:
            attached = attach_arrays(bundle.handle)
            assert set(attached) == set(arrays)
            for name, original in arrays.items():
                np.testing.assert_array_equal(attached[name], original)
                assert attached[name].dtype == original.dtype
        finally:
            detach_all()
            bundle.unlink()

    def test_attach_is_cached_per_process(self):
        bundle = SharedArrayBundle.publish({"x": np.ones(4)})
        try:
            first = attach_arrays(bundle.handle)
            second = attach_arrays(bundle.handle)
            assert first is second
        finally:
            detach_all()
            bundle.unlink()

    def test_handle_is_picklable(self):
        import pickle

        bundle = SharedArrayBundle.publish({"x": np.arange(3)})
        try:
            clone = pickle.loads(pickle.dumps(bundle.handle))
            assert clone == bundle.handle
        finally:
            bundle.unlink()

    def test_unlink_is_idempotent(self):
        bundle = SharedArrayBundle.publish({"x": np.arange(3)})
        bundle.unlink()
        bundle.unlink()
        assert bundle.arrays == {}

    def test_nbytes_accounts_every_segment(self):
        arrays = {
            "a": np.arange(12, dtype=np.int64).reshape(3, 4),
            "b": np.linspace(0.0, 1.0, 7),
            "empty": np.zeros((0, 3), dtype=np.float64),
        }
        expected = sum(a.nbytes for a in arrays.values())
        bundle = SharedArrayBundle.publish(arrays)
        try:
            assert bundle.nbytes == expected
            assert bundle.handle.nbytes == expected
        finally:
            bundle.unlink()


class TestRunSharded:
    def test_in_process_when_single_worker(self):
        shards = [[1, 2], [3], [4, 5, 6]]
        run = run_sharded(_square, shards, 1)
        assert run.results == [[1, 4], [9], [16, 25, 36]]
        assert len(run.worker_seconds) == len(shards)
        assert run.pool_seconds >= 0.0

    def test_pool_preserves_shard_order(self):
        shards = [[i, i + 1] for i in range(8)]
        run = run_sharded(_square, shards, 2)
        assert run.results == [_square(shard) for shard in shards]
        assert len(run.worker_seconds) == len(shards)

    def test_single_shard_skips_pool(self):
        run = run_sharded(_square, [[7]], 4)
        assert run.results == [[49]]

    def test_worker_exceptions_propagate(self):
        with pytest.raises(ValueError, match="worker exploded"):
            run_sharded(_fail, [[1], [2]], 2)
