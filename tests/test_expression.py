"""Unit tests for expressions and relations."""

import numpy as np
import pytest

from repro.ctable import (
    Const,
    Expression,
    Relation,
    Var,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)


class TestRelation:
    def test_of(self):
        assert Relation.of(3, 1) is Relation.GREATER
        assert Relation.of(1, 3) is Relation.LESS
        assert Relation.of(2, 2) is Relation.EQUAL

    def test_flipped(self):
        assert Relation.GREATER.flipped() is Relation.LESS
        assert Relation.LESS.flipped() is Relation.GREATER
        assert Relation.EQUAL.flipped() is Relation.EQUAL


class TestConstruction:
    def test_const_const_rejected(self):
        with pytest.raises(ValueError):
            Expression(Const(1), Const(2))

    def test_helpers(self):
        assert str(var_greater_const(4, 1, 2)) == "Var(o5, a2) > 2"
        assert str(const_greater_var(2, 4, 1)) == "2 > Var(o5, a2)"
        assert str(var_greater_var(0, 1, 2)) == "Var(o1, a3) > Var(o2, a3)"

    def test_equality_and_hash(self):
        a = var_greater_const(0, 1, 3)
        b = var_greater_const(0, 1, 3)
        c = var_greater_const(0, 1, 4)
        assert a == b
        assert hash(a) == hash(b)
        assert a != c

    def test_operand_types_distinguished(self):
        # Var > Const vs Const > Var with same numbers are different.
        assert var_greater_const(0, 0, 1) != const_greater_var(1, 0, 0)


class TestStructure:
    def test_variables_left_first(self):
        e = var_greater_var(2, 5, 1)
        assert e.variables() == ((2, 1), (5, 1))

    def test_single_variable(self):
        e = var_greater_const(3, 0, 2)
        assert e.variables() == ((3, 0),)
        assert not e.is_var_var()

    def test_involves(self):
        e = var_greater_var(1, 2, 0)
        assert e.involves((1, 0))
        assert e.involves((2, 0))
        assert not e.involves((3, 0))


class TestSemantics:
    def test_evaluate_var_const(self):
        e = var_greater_const(0, 0, 2)
        assert e.evaluate({(0, 0): 3})
        assert not e.evaluate({(0, 0): 2})

    def test_evaluate_const_var(self):
        e = const_greater_var(2, 0, 0)
        assert e.evaluate({(0, 0): 1})
        assert not e.evaluate({(0, 0): 2})

    def test_evaluate_var_var(self):
        e = var_greater_var(0, 1, 0)
        assert e.evaluate({(0, 0): 3, (1, 0): 1})
        assert not e.evaluate({(0, 0): 1, (1, 0): 1})

    def test_evaluate_missing_assignment(self):
        with pytest.raises(KeyError):
            var_greater_const(0, 0, 1).evaluate({})

    def test_substitute_partial(self):
        e = var_greater_var(0, 1, 0)
        reduced = e.substitute((0, 0), 3)
        assert isinstance(reduced, Expression)
        assert str(reduced) == "3 > Var(o2, a1)"

    def test_substitute_to_bool(self):
        e = var_greater_const(0, 0, 2)
        assert e.substitute((0, 0), 3) is True
        assert e.substitute((0, 0), 2) is False

    def test_substitute_uninvolved_variable(self):
        e = var_greater_const(0, 0, 2)
        assert e.substitute((9, 9), 1) == e

    def test_truth_under(self):
        e = var_greater_const(0, 0, 2)
        assert e.truth_under(Relation.GREATER)
        assert not e.truth_under(Relation.EQUAL)
        assert not e.truth_under(Relation.LESS)

    def test_true_relation_from_complete(self):
        complete = np.array([[5, 1], [2, 4]])
        assert var_greater_const(0, 0, 3).true_relation(complete) is Relation.GREATER
        assert var_greater_var(0, 1, 1).true_relation(complete) is Relation.LESS
        assert const_greater_var(2, 1, 0).true_relation(complete) is Relation.EQUAL

    def test_question_text(self):
        q = var_greater_const(4, 1, 2).question()
        assert "Var(o5, a2)" in q
        assert "larger than" in q
