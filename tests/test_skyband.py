"""Tests for the k-skyband extension."""

import itertools

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctable import Condition, var_greater_const
from repro.datasets import MISSING, IncompleteDataset, generate_nba
from repro.metrics import f1_score
from repro.probability import DistributionStore
from repro.skyband import (
    CrowdSkyband,
    SkybandConfig,
    build_skyband_candidates,
    skyband,
    skyband_membership_probability,
)
from repro.skyband.probability import _poisson_binomial_below
from repro.skyline import skyline


class TestGroundTruthSkyband:
    def test_one_skyband_is_skyline(self, nba_small):
        assert skyband(nba_small.complete, 1) == skyline(nba_small.complete)

    def test_monotone_in_k(self, nba_small):
        sizes = [len(skyband(nba_small.complete, k)) for k in (1, 2, 3, 4)]
        assert sizes == sorted(sizes)
        # k-skyband contains the (k-1)-skyband
        for k in (2, 3):
            smaller = set(skyband(nba_small.complete, k - 1))
            larger = set(skyband(nba_small.complete, k))
            assert smaller <= larger

    def test_large_k_returns_everything(self):
        values = np.array([[1, 1], [2, 2], [3, 3]])
        assert skyband(values, 10) == [0, 1, 2]

    def test_chain(self):
        values = np.array([[1, 1], [2, 2], [3, 3]])
        assert skyband(values, 1) == [2]
        assert skyband(values, 2) == [1, 2]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            skyband(np.zeros((2, 2)), 0)


class TestPoissonBinomial:
    def test_zero_budget(self):
        assert _poisson_binomial_below([0.5], 0) == 0.0

    def test_no_events(self):
        assert _poisson_binomial_below([], 1) == 1.0

    def test_single_event(self):
        assert _poisson_binomial_below([0.3], 1) == pytest.approx(0.7)
        assert _poisson_binomial_below([0.3], 2) == pytest.approx(1.0)

    @given(
        st.lists(st.floats(0.0, 1.0), min_size=1, max_size=6),
        st.integers(1, 6),
    )
    @settings(max_examples=100, deadline=None)
    def test_matches_enumeration(self, probs, budget):
        expected = 0.0
        for outcome in itertools.product([0, 1], repeat=len(probs)):
            if sum(outcome) >= budget:
                continue
            weight = 1.0
            for hit, q in zip(outcome, probs):
                weight *= q if hit else (1.0 - q)
            expected += weight
        assert _poisson_binomial_below(probs, budget) == pytest.approx(expected)


class TestMembershipProbability:
    def _store(self, n_vars=3, domain=4):
        pmf = np.full(domain, 1.0 / domain)
        return DistributionStore({(o, 0): pmf.copy() for o in range(n_vars)})

    def test_base_already_out(self):
        store = self._store()
        assert skyband_membership_probability(2, [], 2, store) == 0.0

    def test_no_clauses_in(self):
        store = self._store()
        assert skyband_membership_probability(1, [], 2, store) == 1.0

    def test_single_clause_k1(self):
        # Clause "Var > 1" true with prob 0.5; member iff clause holds.
        store = self._store()
        clause = Condition.of([[var_greater_const(0, 0, 1)]])
        p = skyband_membership_probability(0, [clause], 1, store)
        assert p == pytest.approx(0.5)

    def test_k2_single_clause_always_in(self):
        store = self._store()
        clause = Condition.of([[var_greater_const(0, 0, 1)]])
        assert skyband_membership_probability(0, [clause], 2, store) == 1.0

    def test_independent_two_clauses(self):
        store = self._store()
        c1 = Condition.of([[var_greater_const(0, 0, 1)]])  # fails w.p. 0.5
        c2 = Condition.of([[var_greater_const(1, 0, 0)]])  # fails w.p. 0.25
        # member of 2-skyband unless both fail: 1 - 0.5*0.25
        p = skyband_membership_probability(0, [c1, c2], 2, store)
        assert p == pytest.approx(1 - 0.125)

    def test_shared_variable_branches_exactly(self):
        store = self._store()
        # Same variable in both clauses: X>1 and X>2; dominated count is
        # #failures of these clauses. For 2-skyband: out iff both fail,
        # i.e. X <= 1: probability 0.5 -> membership 0.5.
        c1 = Condition.of([[var_greater_const(0, 0, 1)]])
        c2 = Condition.of([[var_greater_const(0, 0, 2)]])
        p = skyband_membership_probability(0, [c1, c2], 2, store)
        assert p == pytest.approx(0.5)

    def test_matches_brute_force_enumeration(self):
        """Exactness check against full assignment enumeration."""
        rng = np.random.default_rng(5)
        domain = 3
        pmfs = {}
        for o in range(3):
            w = rng.random(domain) + 0.1
            pmfs[(o, 0)] = w / w.sum()
        store = DistributionStore(pmfs)
        from repro.ctable import Expression, Var

        clauses = [
            Condition.of([[var_greater_const(0, 0, 1), Expression(Var(1, 0), Var(2, 0))]]),
            Condition.of([[var_greater_const(1, 0, 0)]]),
            Condition.of([[Expression(Var(0, 0), Var(2, 0))]]),
        ]
        k = 2
        exact = skyband_membership_probability(0, clauses, k, store)
        expected = 0.0
        variables = [(o, 0) for o in range(3)]
        for assignment_values in itertools.product(range(domain), repeat=3):
            assignment = dict(zip(variables, assignment_values))
            weight = 1.0
            for v, value in assignment.items():
                weight *= float(pmfs[v][value])
            failures = sum(0 if c.evaluate(assignment) else 1 for c in clauses)
            if failures < k:
                expected += weight
        assert exact == pytest.approx(expected, abs=1e-12)

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            skyband_membership_probability(0, [], 0, self._store())


class TestCandidates:
    def test_build_marks_certain_members(self, nba_small):
        candidates = build_skyband_candidates(nba_small, 2, alpha=1.0)
        assert set(candidates) == set(range(nba_small.n_objects))
        certain = [c.obj for c in candidates.values() if c.certainly_in]
        truth = set(skyband(nba_small.complete, 2))
        assert set(certain) <= truth

    def test_alpha_pruning_declares_out(self):
        values = np.array(
            [[0, MISSING], [1, MISSING], [2, MISSING], [3, MISSING], [4, MISSING]]
        )
        ds = IncompleteDataset(values=values, domain_sizes=[6, 6])
        candidates = build_skyband_candidates(ds, 1, alpha=0.2)
        assert candidates[0].certainly_out

    def test_simplify_counts_failed_clauses(self, nba_small):
        candidates = build_skyband_candidates(nba_small, 1, alpha=1.0)
        # Resolve everything against ground truth: each candidate must end
        # decided, and membership must match the true skyline.
        assignment = {v: nba_small.true_value(*v) for v in nba_small.variables()}

        def oracle(expression):
            return expression.evaluate(assignment)

        truth = set(skyline(nba_small.complete))
        for candidate in candidates.values():
            candidate.simplify_with(oracle)
            assert candidate.decided or not candidate.open_clauses
            assert candidate.certainly_in == (candidate.obj in truth)


class TestCrowdSkybandQuery:
    def test_perfect_budget_recovers_truth(self):
        nba = generate_nba(n_objects=100, missing_rate=0.1, seed=4)
        config = SkybandConfig(k=2, alpha=1.0, budget=10_000, latency=1000, seed=0)
        result = CrowdSkyband(nba, config).run()
        assert result.answers == skyband(nba.complete, 2)

    def test_budget_and_latency_respected(self):
        nba = generate_nba(n_objects=100, missing_rate=0.1, seed=4)
        config = SkybandConfig(k=2, alpha=0.1, budget=12, latency=3, seed=0)
        result = CrowdSkyband(nba, config).run()
        assert result.tasks_posted <= 12
        assert result.rounds <= 3

    def test_crowd_improves_over_initial(self):
        nba = generate_nba(n_objects=150, missing_rate=0.15, seed=6)
        truth = skyband(nba.complete, 2)
        config = SkybandConfig(k=2, alpha=0.1, budget=60, latency=6, seed=0)
        result = CrowdSkyband(nba, config).run()
        assert f1_score(result.answers, truth) >= f1_score(result.initial_answers, truth)

    def test_k1_agrees_with_skyline_truth(self):
        nba = generate_nba(n_objects=80, missing_rate=0.1, seed=9)
        config = SkybandConfig(k=1, alpha=1.0, budget=10_000, latency=1000, seed=0)
        result = CrowdSkyband(nba, config).run()
        assert result.answers == skyline(nba.complete)

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            SkybandConfig(k=0)
        with pytest.raises(ValueError):
            SkybandConfig(latency=0)


class TestMembershipProbabilityProperty:
    """Hypothesis: exactness against brute-force world enumeration."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 100_000))
    @settings(max_examples=40, deadline=None)
    def test_random_clause_sets(self, seed):
        import itertools

        import numpy as np

        from repro.ctable import Expression, Var

        rng = np.random.default_rng(seed)
        n_vars = int(rng.integers(2, 5))
        domain = int(rng.integers(2, 5))
        pmfs = {}
        for o in range(n_vars):
            w = rng.random(domain) + 0.05
            pmfs[(o, 0)] = w / w.sum()
        store = DistributionStore(pmfs)

        n_clauses = int(rng.integers(1, 4))
        clauses = []
        for __ in range(n_clauses):
            exprs = []
            for __ in range(int(rng.integers(1, 3))):
                a = int(rng.integers(n_vars))
                if rng.random() < 0.5:
                    exprs.append(var_greater_const(a, 0, int(rng.integers(domain))))
                else:
                    b = int(rng.integers(n_vars))
                    while b == a:
                        b = int(rng.integers(n_vars))
                    exprs.append(Expression(Var(a, 0), Var(b, 0)))
            clauses.append(Condition.of([exprs]))
        clauses = [c for c in clauses if not c.is_constant]
        if not clauses:
            return
        k = int(rng.integers(1, len(clauses) + 2))
        base = int(rng.integers(0, 2))

        exact = skyband_membership_probability(base, clauses, k, store)
        expected = 0.0
        variables = [(o, 0) for o in range(n_vars)]
        for values in itertools.product(range(domain), repeat=n_vars):
            assignment = dict(zip(variables, values))
            weight = 1.0
            for v, value in assignment.items():
                weight *= float(pmfs[v][value])
            failures = base + sum(
                0 if c.evaluate(assignment) else 1 for c in clauses
            )
            if failures < k:
                expected += weight
        assert exact == pytest.approx(expected, abs=1e-10)
