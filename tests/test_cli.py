"""Tests for the top-level demo CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "nba"
        assert args.strategy == "hhs"
        assert args.budget == 50

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "magic"])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--strategy", "magic"])


class TestMain:
    def test_movies_run(self, capsys):
        assert main(["--dataset", "movies", "--budget", "6", "--latency", "3"]) == 0
        out = capsys.readouterr().out
        assert "movies" in out
        assert "F1" in out

    def test_nba_run(self, capsys):
        assert main(["--n", "80", "--budget", "8", "--latency", "2"]) == 0
        out = capsys.readouterr().out
        assert "nba-80" in out
        assert "posted" in out

    def test_synthetic_run(self, capsys):
        assert (
            main(
                [
                    "--dataset",
                    "synthetic",
                    "--n",
                    "80",
                    "--budget",
                    "8",
                    "--latency",
                    "2",
                    "--strategy",
                    "fbs",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synthetic-80" in out
