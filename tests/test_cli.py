"""Tests for the top-level demo CLI."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args([])
        assert args.dataset == "nba"
        assert args.strategy == "hhs"
        assert args.budget == 50

    def test_rejects_unknown_dataset(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--dataset", "magic"])

    def test_rejects_unknown_strategy(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["--strategy", "magic"])


class TestMain:
    def test_movies_run(self, capsys):
        assert main(["--dataset", "movies", "--budget", "6", "--latency", "3"]) == 0
        out = capsys.readouterr().out
        assert "movies" in out
        assert "F1" in out

    def test_nba_run(self, capsys):
        assert main(["--n", "80", "--budget", "8", "--latency", "2"]) == 0
        out = capsys.readouterr().out
        assert "nba-80" in out
        assert "posted" in out

    @pytest.mark.parametrize("selection", ["batched", "scalar"])
    def test_selection_flag_with_perf_report(self, selection, capsys):
        code = main(
            ["--dataset", "movies", "--budget", "6", "--latency", "3",
             "--selection", selection, "--perf"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "selection (%s):" % selection in out
        assert "fresh evaluations" in out

    def test_utility_cache_size_flag(self, capsys):
        code = main(
            ["--dataset", "movies", "--budget", "6", "--latency", "3",
             "--utility-cache-size", "0"]
        )
        assert code == 0

    def test_forest_backend_with_circuit_cache_flag(self, capsys):
        code = main(
            ["--dataset", "movies", "--budget", "6", "--latency", "3",
             "--probability-backend", "forest",
             "--circuit-cache-size", "1024", "--perf"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "forest:" in out
        assert "sweeps" in out

    def test_invalid_circuit_cache_size_is_clean_error(self, capsys):
        assert main(["--n", "40", "--circuit-cache-size", "-1"]) == 2
        assert "circuit_cache_size" in capsys.readouterr().err

    def test_resume_requires_checkpoint(self, capsys):
        assert main(["--resume"]) == 2
        assert "--checkpoint" in capsys.readouterr().err

    def test_invalid_fault_rate_is_clean_error(self, capsys):
        assert main(["--drop-rate", "1.5"]) == 2
        assert "drop_rate" in capsys.readouterr().err

    def test_invalid_config_is_clean_error(self, capsys):
        assert main(["--n", "40", "--n-jobs", "-2"]) == 2
        assert "n_jobs" in capsys.readouterr().err
        assert main(["--n", "40", "--alpha", "-1"]) == 2
        assert "alpha" in capsys.readouterr().err

    def test_corrupt_checkpoint_is_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        code = main(
            ["--n", "80", "--budget", "8", "--latency", "2",
             "--checkpoint", str(bad), "--resume"]
        )
        assert code == 2
        assert "cannot resume" in capsys.readouterr().err

    def test_fault_injection_reports_degraded(self, capsys):
        code = main(
            [
                "--n", "80", "--budget", "10", "--latency", "3",
                "--drop-rate", "0.5", "--transient-every", "2",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "DEGRADED run" in out
        assert "answered" in out

    def test_checkpoint_write_and_resume(self, tmp_path, capsys):
        checkpoint = str(tmp_path / "run.ckpt.json")
        base = ["--n", "80", "--budget", "8", "--latency", "2",
                "--checkpoint", checkpoint]
        assert main(base) == 0
        capsys.readouterr()
        assert main(base + ["--resume"]) == 0
        assert "resumed from checkpoint" in capsys.readouterr().out

    def test_synthetic_run(self, capsys):
        assert (
            main(
                [
                    "--dataset",
                    "synthetic",
                    "--n",
                    "80",
                    "--budget",
                    "8",
                    "--latency",
                    "2",
                    "--strategy",
                    "fbs",
                ]
            )
            == 0
        )
        out = capsys.readouterr().out
        assert "synthetic-80" in out


class TestIntegrityAndGuardFlags:
    def test_flag_defaults(self):
        args = build_parser().parse_args([])
        assert args.strict_integrity is False
        assert args.reask_budget_frac is None
        assert args.adpll_node_budget is None
        assert args.adpll_deadline_s is None
        assert args.reliability_prior is None

    def test_flags_parse(self):
        args = build_parser().parse_args(
            [
                "--strict-integrity",
                "--reask-budget-frac", "0.5",
                "--adpll-node-budget", "5000",
                "--adpll-deadline-s", "0.25",
                "--reliability-prior", "2", "3",
            ]
        )
        assert args.strict_integrity is True
        assert args.reask_budget_frac == 0.5
        assert args.adpll_node_budget == 5000
        assert args.adpll_deadline_s == 0.25
        assert args.reliability_prior == [2.0, 3.0]

    def test_strict_run_with_spam(self, capsys):
        code = main(
            [
                "--dataset", "movies",
                "--budget", "6",
                "--latency", "3",
                "--strict-integrity",
                "--spam-fraction", "0.5",
                "--worker-accuracy", "0.95",
            ]
        )
        assert code == 0
        assert "F1" in capsys.readouterr().out

    def test_deadline_flag_reports_approximations(self, capsys):
        code = main(
            [
                "--dataset", "nba",
                "--n", "30",
                "--missing-rate", "0.4",
                "--alpha", "0.1",
                "--budget", "12",
                "--latency", "3",
                "--seed", "3",
                "--adpll-deadline-s", "1e-9",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "resource guard:" in out

    def test_invalid_guard_config_is_clean_error(self, capsys):
        code = main(["--dataset", "movies", "--reask-budget-frac", "1.5"])
        assert code == 2
        assert "invalid configuration" in capsys.readouterr().err

    def test_invalid_prior_is_clean_error(self, capsys):
        code = main(["--dataset", "movies", "--reliability-prior", "0", "1"])
        assert code == 2
        assert "invalid configuration" in capsys.readouterr().err
