"""Tests for the session runtime: journal, context, supervisor.

Covers the durable write-ahead answer journal (round trip, torn tail,
corruption detection), per-session RNG streams and task-id allocation,
cooperative cancellation, the supervised state machine with bounded
restart/backoff, answer-queue backpressure, and the re-entrancy
regression: two concurrent sessions with the same seed each reproduce
the solo run exactly.
"""

import dataclasses
import json
import threading

import numpy as np
import pytest

from repro import BayesCrowd, BayesCrowdConfig, generate_nba
from repro.crowd import SimulatedCrowdPlatform
from repro.ctable import Relation, var_greater_const, var_greater_var
from repro.errors import (
    BackpressureError,
    JournalCorruptError,
    JournalError,
    SessionCancelledError,
)
from repro.session import (
    AnswerJournal,
    BoundedAnswerQueue,
    CancellationToken,
    QueuedAnswerPlatform,
    SessionContext,
    SessionSupervisor,
    TaskIdAllocator,
    journal_problems,
    read_journal,
)
from repro.session.context import current_session, session_rng


# ---------------------------------------------------------------------------
# journal
# ---------------------------------------------------------------------------
class TestAnswerJournal:
    def test_append_read_round_trip(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            assert journal.append("open", {"version": 1}) == 1
            assert journal.append("round_begin", {"round": 1}) == 2
            assert journal.append("answer", {"task_id": 7}) == 3
            assert journal.last_seq == 3
        records = read_journal(path)
        assert [(r.seq, r.kind) for r in records] == [
            (1, "open"), (2, "round_begin"), (3, "answer"),
        ]
        assert records[2].payload == {"task_id": 7}

    def test_unknown_kind_rejected(self, tmp_path):
        with AnswerJournal(tmp_path / "j.jsonl", fsync=False) as journal:
            with pytest.raises(JournalError):
                journal.append("not-a-kind", {})

    def test_append_after_close_rejected(self, tmp_path):
        journal = AnswerJournal(tmp_path / "j.jsonl", fsync=False)
        journal.close()
        with pytest.raises(JournalError):
            journal.append("open", {})

    def test_reopen_resumes_sequence(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            journal.append("open", {})
            journal.append("round_begin", {"round": 1})
        with AnswerJournal(path, fsync=False) as journal:
            assert journal.last_seq == 2
            assert journal.append("answer", {"task_id": 1}) == 3
        assert [r.seq for r in read_journal(path)] == [1, 2, 3]

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            journal.append("open", {})
            journal.append("answer", {"task_id": 1})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"seq": 3, "kind": "answer", "pay')  # cut mid-write
        records = read_journal(path)
        assert [r.seq for r in records] == [1, 2]

    def test_reopen_truncates_torn_tail(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            journal.append("open", {})
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"torn": tr')
        with AnswerJournal(path, fsync=False) as journal:
            assert journal.last_seq == 1
            journal.append("answer", {"task_id": 1})
        # The torn bytes are gone and the file parses end to end.
        assert [r.seq for r in read_journal(path)] == [1, 2]

    def test_bit_rot_before_tail_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            journal.append("open", {})
            journal.append("answer", {"task_id": 1})
            journal.append("round_commit", {"round": 1})
        lines = path.read_text().splitlines()
        lines[1] = lines[1].replace('"task_id": 1', '"task_id": 2').replace(
            '"task_id":1', '"task_id":2'
        )
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            read_journal(path)

    def test_sequence_gap_is_corruption(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            journal.append("open", {})
            journal.append("answer", {"task_id": 1})
            journal.append("round_commit", {"round": 1})
        lines = path.read_text().splitlines()
        del lines[1]  # lose the middle record
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(JournalCorruptError):
            read_journal(path)

    def test_corrupt_tail_checksum_is_dropped(self, tmp_path):
        path = tmp_path / "j.jsonl"
        with AnswerJournal(path, fsync=False) as journal:
            journal.append("open", {})
            journal.append("answer", {"task_id": 1})
        lines = path.read_text().splitlines()
        lines[-1] = lines[-1].replace('"task_id":1', '"task_id":9')
        path.write_text("\n".join(lines) + "\n")
        assert [r.seq for r in read_journal(path)] == [1]

    def test_stats(self, tmp_path):
        with AnswerJournal(tmp_path / "j.jsonl", fsync=False) as journal:
            journal.append("open", {})
            assert journal.stats() == {
                "journal_appends": 1,
                "journal_last_seq": 1,
            }


class TestJournalProblems:
    def _write(self, path, records):
        with AnswerJournal(path, fsync=False) as journal:
            for kind, payload in records:
                journal.append(kind, payload)

    def test_consistent_journal_has_no_problems(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [
            ("open", {"version": 1}),
            ("round_begin", {"round": 1}),
            ("answer", {"task_id": 1}),
            ("reask", {"task_id": 2, "of_task": 1}),
            ("round_commit", {"round": 1}),
        ])
        assert journal_problems(path) == []

    def test_empty_journal_flagged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("")
        assert journal_problems(path) == ["journal is empty"]

    def test_missing_open_header_flagged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [("round_begin", {"round": 1}),
                           ("round_commit", {"round": 1})])
        assert any("expected 'open'" in p for p in journal_problems(path))

    def test_answer_outside_round_flagged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [("open", {}), ("answer", {"task_id": 1})])
        assert any("outside any round" in p for p in journal_problems(path))

    def test_double_answered_task_flagged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [
            ("open", {}),
            ("round_begin", {"round": 1}),
            ("answer", {"task_id": 5}),
            ("answer", {"task_id": 5}),
        ])
        assert any("answered twice" in p for p in journal_problems(path))

    def test_out_of_order_round_flagged(self, tmp_path):
        path = tmp_path / "j.jsonl"
        self._write(path, [("open", {}), ("round_begin", {"round": 3})])
        assert any("out of order" in p for p in journal_problems(path))

    def test_corrupt_journal_is_one_problem(self, tmp_path):
        path = tmp_path / "j.jsonl"
        path.write_text("not json at all\nnor this\n")
        problems = journal_problems(path)
        assert len(problems) == 1 and "unparseable" in problems[0]


# ---------------------------------------------------------------------------
# context: task ids + RNG streams
# ---------------------------------------------------------------------------
class TestTaskIdAllocator:
    def test_allocation_is_monotonic_from_one(self):
        allocator = TaskIdAllocator()
        assert [allocator.allocate() for _ in range(3)] == [1, 2, 3]
        assert allocator.next_id == 4

    def test_reserve_never_moves_backwards(self):
        allocator = TaskIdAllocator()
        allocator.reserve(10)
        assert allocator.allocate() == 11
        allocator.reserve(5)  # already used; no rewind
        assert allocator.allocate() == 12

    def test_state_dict_round_trip(self):
        allocator = TaskIdAllocator()
        allocator.allocate()
        allocator.allocate()
        restored = TaskIdAllocator()
        restored.load_state_dict(json.loads(json.dumps(allocator.state_dict())))
        assert restored.allocate() == 3

    def test_ids_start_at_one(self):
        with pytest.raises(ValueError):
            TaskIdAllocator(next_id=0)


class TestSessionContext:
    def test_named_streams_are_cached_and_deterministic(self):
        first = SessionContext(seed=7)
        second = SessionContext(seed=7)
        assert first.rng("vote") is first.rng("vote")
        assert (
            first.rng("vote").integers(0, 1 << 30, 8).tolist()
            == second.rng("vote").integers(0, 1 << 30, 8).tolist()
        )

    def test_distinct_names_give_distinct_streams(self):
        context = SessionContext(seed=7)
        a = context.rng("vote").integers(0, 1 << 30, 8).tolist()
        b = context.rng("jitter").integers(0, 1 << 30, 8).tolist()
        assert a != b

    def test_state_dict_restores_stream_position(self):
        context = SessionContext(seed=3)
        context.rng("vote").integers(0, 1 << 30, 5)
        state = json.loads(json.dumps(context.state_dict(), default=int))
        expected = context.rng("vote").integers(0, 1 << 30, 5).tolist()

        restored = SessionContext(seed=3)
        restored.load_state_dict(state)
        assert restored.rng("vote").integers(0, 1 << 30, 5).tolist() == expected

    def test_activate_sets_ambient_session(self):
        context = SessionContext(seed=1, session_id="s1")
        assert current_session() is None
        assert session_rng("vote") is None
        with context.activate():
            assert current_session() is context
            assert session_rng("vote") is context.rng("vote")
        assert current_session() is None

    def test_nested_activation_restores_outer(self):
        outer = SessionContext(seed=1, session_id="outer")
        inner = SessionContext(seed=2, session_id="inner")
        with outer.activate():
            with inner.activate():
                assert current_session() is inner
            assert current_session() is outer

    def test_activation_is_thread_local(self):
        context = SessionContext(seed=1, session_id="main-thread")
        seen = []

        def _probe():
            seen.append(current_session())

        with context.activate():
            thread = threading.Thread(target=_probe)
            thread.start()
            thread.join()
        assert seen == [None]


class TestCancellationToken:
    def test_cancel_trips_check(self):
        token = CancellationToken()
        token.check("preprocess")  # not cancelled: no raise
        token.cancel("operator stop")
        with pytest.raises(SessionCancelledError) as err:
            token.check("selection")
        assert "operator stop" in str(err.value)

    def test_deadline_trips_token(self):
        token = CancellationToken(deadline_s=1e-9)
        assert token.cancelled
        with pytest.raises(SessionCancelledError):
            token.check("ctable")
        assert token.reason == "deadline exceeded"

    def test_set_deadline_only_tightens(self):
        token = CancellationToken(deadline_s=0.001)
        token.set_deadline(3600.0)  # looser: ignored
        assert token.remaining() < 1.0

    def test_remaining_is_clamped_at_zero(self):
        token = CancellationToken(deadline_s=1e-9)
        assert token.remaining() == 0.0

    def test_remaining_none_without_deadline(self):
        assert CancellationToken().remaining() is None

    def test_nonpositive_deadline_rejected(self):
        with pytest.raises(ValueError):
            CancellationToken().set_deadline(0.0)


# ---------------------------------------------------------------------------
# backpressure
# ---------------------------------------------------------------------------
class TestBoundedAnswerQueue:
    def _expr(self, row):
        return var_greater_const(row, 1, 2)

    def test_put_take_round_trip(self):
        queue = BoundedAnswerQueue(maxsize=4)
        queue.put(self._expr(0), Relation.GREATER)
        assert queue.take_for(self._expr(0)) is Relation.GREATER
        assert queue.take_for(self._expr(0)) is None
        assert len(queue) == 0

    def test_reject_policy_raises_when_full(self):
        queue = BoundedAnswerQueue(maxsize=1, policy="reject")
        queue.put(self._expr(0), Relation.GREATER)
        with pytest.raises(BackpressureError):
            queue.put(self._expr(1), Relation.LESS)
        assert queue.rejected == 1
        assert queue.take_for(self._expr(0)) is Relation.GREATER

    def test_shed_oldest_policy_drops_head(self):
        queue = BoundedAnswerQueue(maxsize=1, policy="shed-oldest")
        queue.put(self._expr(0), Relation.GREATER)
        queue.put(self._expr(1), Relation.LESS)
        assert queue.shed == 1
        assert queue.take_for(self._expr(0)) is None
        assert queue.take_for(self._expr(1)) is Relation.LESS

    def test_stats_counters(self):
        queue = BoundedAnswerQueue(maxsize=2)
        queue.put(self._expr(0), Relation.GREATER)
        assert queue.stats() == {
            "queue_depth": 1,
            "queue_accepted": 1,
            "queue_shed": 0,
            "queue_rejected": 0,
        }

    def test_invalid_construction_rejected(self):
        with pytest.raises(ValueError):
            BoundedAnswerQueue(maxsize=0)
        with pytest.raises(ValueError):
            BoundedAnswerQueue(policy="drop-newest")


class TestQueuedAnswerPlatform:
    def test_queue_answers_win_and_rest_fall_through(self, nba_small):
        from repro.crowd.task import ComparisonTask

        queue = BoundedAnswerQueue(maxsize=4)
        fallback = SimulatedCrowdPlatform(
            nba_small, worker_accuracy=1.0, rng=np.random.default_rng(0)
        )
        platform = QueuedAnswerPlatform(queue, fallback=fallback)
        queued_expr = var_greater_var(0, 1, 0)
        queue.put(queued_expr, Relation.LESS)
        tasks = [
            ComparisonTask(expression=queued_expr, for_object=1),
            ComparisonTask(expression=var_greater_var(0, 2, 0), for_object=2),
        ]
        answers = platform.post_batch(tasks)
        assert answers[tasks[0]] is Relation.LESS  # served from the queue
        assert platform.answered_from_queue == 1
        assert tasks[1] in answers  # served by the fallback platform

    def test_without_fallback_batch_is_partial(self):
        from repro.crowd.task import ComparisonTask

        queue = BoundedAnswerQueue(maxsize=4)
        platform = QueuedAnswerPlatform(queue)
        task = ComparisonTask(expression=var_greater_var(0, 1, 0), for_object=1)
        assert platform.post_batch([task]) == {}


# ---------------------------------------------------------------------------
# supervisor
# ---------------------------------------------------------------------------
class _FlakyPlatform:
    """Raises on the first ``fail_times`` batch posts, then delegates."""

    def __init__(self, inner, fail_times=1):
        self.inner = inner
        self.failures_left = fail_times

    def post_batch(self, tasks):
        if self.failures_left > 0:
            self.failures_left -= 1
            raise RuntimeError("injected platform outage")
        return self.inner.post_batch(tasks)

    def state_dict(self):
        return self.inner.state_dict()

    def load_state_dict(self, state):
        self.inner.load_state_dict(state)


def _dataset():
    return generate_nba(n_objects=16, missing_rate=0.4, seed=2)


def _config(**overrides):
    base = dict(
        budget=10, latency=4, worker_accuracy=0.9, alpha=0.1, seed=2
    )
    base.update(overrides)
    return BayesCrowdConfig(**base)


class TestSessionSupervisor:
    def test_run_completes_and_records_transitions(self, tmp_path):
        supervisor = SessionSupervisor(tmp_path)
        supervisor.create("q1", _dataset(), _config())
        result = supervisor.run("q1")
        assert result is not None
        assert supervisor.state("q1") == "DONE"
        session = supervisor.get("q1")
        assert session.transitions[0] == ("PENDING", "RUNNING", "started")
        assert session.transitions[-1][1] == "DONE"
        assert session.journal_path.exists()
        assert session.checkpoint_path.exists()

    def test_duplicate_and_unknown_sessions_rejected(self, tmp_path):
        supervisor = SessionSupervisor(tmp_path)
        supervisor.create("q1", _dataset(), _config())
        with pytest.raises(ValueError):
            supervisor.create("q1", _dataset(), _config())
        with pytest.raises(KeyError):
            supervisor.get("missing")

    def test_illegal_transition_rejected(self, tmp_path):
        supervisor = SessionSupervisor(tmp_path)
        supervisor.create("q1", _dataset(), _config())
        supervisor.run("q1")
        with pytest.raises(RuntimeError):
            supervisor.run("q1")  # DONE -> RUNNING is not a legal edge

    def test_deadline_pauses_then_resume_completes(self, tmp_path):
        supervisor = SessionSupervisor(tmp_path)
        config = _config(session_deadline_s=1e-6)
        session = supervisor.create("q1", _dataset(), config)
        assert supervisor.run("q1") is None  # deadline trips immediately
        assert supervisor.state("q1") == "PAUSED"
        assert isinstance(session.error, SessionCancelledError)

        session.config = dataclasses.replace(config, session_deadline_s=0.0)
        result = supervisor.run("q1", resume=True)
        assert result is not None
        assert supervisor.state("q1") == "DONE"
        solo = BayesCrowd(_dataset(), _config()).run()
        assert result.answers == solo.answers
        assert result.rounds == solo.rounds

    def test_crash_triggers_bounded_restart(self, tmp_path):
        dataset = _dataset()
        platform = _FlakyPlatform(
            SimulatedCrowdPlatform(
                dataset, worker_accuracy=0.9, rng=np.random.default_rng(2)
            ),
            fail_times=1,
        )
        supervisor = SessionSupervisor(
            tmp_path, max_restarts=2, restart_backoff_base=0.0
        )
        supervisor.create("q1", dataset, _config(), platform=platform)
        result = supervisor.run("q1")
        assert result is not None
        session = supervisor.get("q1")
        assert session.restarts == 1
        assert supervisor.state("q1") == "DONE"
        assert any("restart 1/2" in reason for _, _, reason in session.transitions)
        assert supervisor.stats()["q1"]["restarts"] == 1

    def test_restart_budget_exhaustion_fails_session(self, tmp_path):
        dataset = _dataset()
        platform = _FlakyPlatform(
            SimulatedCrowdPlatform(dataset, rng=np.random.default_rng(2)),
            fail_times=100,
        )
        supervisor = SessionSupervisor(
            tmp_path, max_restarts=1, restart_backoff_base=0.0
        )
        supervisor.create("q1", dataset, _config(), platform=platform)
        with pytest.raises(RuntimeError, match="injected platform outage"):
            supervisor.run("q1")
        assert supervisor.state("q1") == "FAILED"
        assert supervisor.get("q1").restarts == 2


class TestConcurrentSessions:
    """Satellite regression: same-seed sessions must not share RNG state."""

    def test_two_same_seed_sessions_match_the_solo_run(self, tmp_path):
        dataset = _dataset()
        solo = BayesCrowd(dataset, _config()).run()
        supervisor = SessionSupervisor(tmp_path)
        supervisor.create("a", dataset, _config())
        supervisor.create("b", dataset, _config())
        results = supervisor.run_all(parallel=True)
        assert set(results) == {"a", "b"}
        for result in results.values():
            assert result is not None
            assert result.answers == solo.answers
            assert result.certain_answers == solo.certain_answers
            assert result.rounds == solo.rounds
            assert result.tasks_posted == solo.tasks_posted
            assert result.answer_probabilities == solo.answer_probabilities
        assert supervisor.state("a") == supervisor.state("b")
