"""Unit tests for missing-value injection."""

import numpy as np
import pytest

from repro.datasets import attribute_mask, mcar_mask


class TestMcarMask:
    def test_exact_count(self, rng):
        mask = mcar_mask(50, 10, 0.1, rng)
        assert mask.sum() == 50

    def test_zero_rate(self, rng):
        mask = mcar_mask(20, 5, 0.0, rng)
        assert not mask.any()

    def test_rejects_bad_rate(self, rng):
        with pytest.raises(ValueError):
            mcar_mask(10, 5, 1.0, rng)
        with pytest.raises(ValueError):
            mcar_mask(10, 5, -0.1, rng)

    def test_keeps_one_observed_cell_per_object(self, rng):
        # Even at a high rate, no object loses every attribute by default.
        mask = mcar_mask(30, 4, 0.7, rng)
        assert (mask.sum(axis=1) < 4).all()

    def test_per_object_cap(self, rng):
        mask = mcar_mask(40, 6, 0.3, rng, max_missing_per_object=2)
        assert (mask.sum(axis=1) <= 2).all()

    def test_reproducible_with_seed(self):
        a = mcar_mask(25, 4, 0.2, np.random.default_rng(9))
        b = mcar_mask(25, 4, 0.2, np.random.default_rng(9))
        assert np.array_equal(a, b)

    def test_roughly_uniform_over_objects(self):
        # MCAR: "the missing rate of each object is roughly equal to the
        # missing rate of the dataset" (Section 7).
        rng = np.random.default_rng(1)
        mask = mcar_mask(2000, 10, 0.1, rng)
        per_object = mask.sum(axis=1)
        assert per_object.mean() == pytest.approx(1.0, abs=0.05)


class TestAttributeMask:
    def test_hides_whole_columns(self):
        mask = attribute_mask(10, 5, [1, 3])
        assert mask[:, 1].all() and mask[:, 3].all()
        assert not mask[:, 0].any()
        assert mask.sum() == 20

    def test_rejects_bad_attribute(self):
        with pytest.raises(ValueError):
            attribute_mask(10, 5, [5])


class TestBalancedMcarMask:
    def test_exact_total(self, rng):
        from repro.datasets import balanced_mcar_mask

        mask = balanced_mcar_mask(100, 10, 0.1, rng)
        assert mask.sum() == 100

    def test_per_object_balance(self, rng):
        from repro.datasets import balanced_mcar_mask

        mask = balanced_mcar_mask(200, 11, 0.2, rng)
        per_object = mask.sum(axis=1)
        # 0.2 * 11 = 2.2: every object loses exactly 2 or 3 attributes.
        assert set(per_object.tolist()) <= {2, 3}

    def test_never_blanks_an_object(self, rng):
        from repro.datasets import balanced_mcar_mask

        mask = balanced_mcar_mask(50, 4, 0.75, rng)
        assert (mask.sum(axis=1) < 4).all()

    def test_zero_rate(self, rng):
        from repro.datasets import balanced_mcar_mask

        assert not balanced_mcar_mask(20, 5, 0.0, rng).any()

    def test_rejects_bad_rate(self, rng):
        from repro.datasets import balanced_mcar_mask
        import pytest

        with pytest.raises(ValueError):
            balanced_mcar_mask(10, 5, 1.0, rng)
