"""Tests for the BayesCrowd framework end to end (simulated crowd)."""

import numpy as np
import pytest

from repro import (
    BayesCrowd,
    BayesCrowdConfig,
    f1_score,
    generate_nba,
    run_bayescrowd,
    skyline,
)
from repro.core.framework import learn_distributions
from repro.crowd import SimulatedCrowdPlatform
from repro.datasets import example_distributions, sample_dataset


def movie_query(budget=6, latency=3, strategy="hhs", m=2, **kwargs):
    dataset = sample_dataset()
    config = BayesCrowdConfig(
        alpha=1.0,
        budget=budget,
        latency=latency,
        strategy=strategy,
        m=m,
        distribution_source="uniform",
        **kwargs,
    )
    return BayesCrowd(dataset, config, distributions=example_distributions())


class TestMovieExample:
    def test_perfect_result_with_enough_budget(self):
        bc = movie_query(budget=10, latency=5)
        result = bc.run()
        truth = skyline(bc.dataset.complete)
        assert result.answers == truth == [0, 1, 2, 4]
        assert result.f1(truth) == 1.0

    def test_example4_budget_and_latency(self):
        """B=6, L=3 -> two tasks per round, as in Example 4."""
        bc = movie_query(budget=6, latency=3)
        result = bc.run()
        assert all(record.tasks_posted <= 2 for record in result.history)
        assert result.rounds <= 3
        assert result.tasks_posted <= 6

    def test_certain_objects_never_crowdsourced(self):
        bc = movie_query(budget=10, latency=5)
        result = bc.run()
        for record in result.history:
            assert 1 not in record.objects
            assert 2 not in record.objects

    def test_zero_budget_returns_initial_inference(self):
        bc = movie_query(budget=0)
        result = bc.run()
        assert result.tasks_posted == 0
        assert result.rounds == 0
        # Initial inference: o1, o2, o3, o5 have Pr > 0.5 (0.8/1/1/0.823).
        assert result.answers == [0, 1, 2, 4]
        assert result.answers == result.initial_answers

    def test_stops_when_everything_resolved(self):
        bc = movie_query(budget=100, latency=50)
        result = bc.run()
        assert result.tasks_posted < 100
        assert not bc.ctable.has_open_expressions()

    def test_history_records_progress(self):
        bc = movie_query(budget=10, latency=5)
        result = bc.run()
        assert result.history
        opens = [record.open_conditions for record in result.history]
        assert opens == sorted(opens, reverse=True)
        assert opens[-1] == 0


class TestStrategiesEndToEnd:
    @pytest.mark.parametrize("strategy", ["fbs", "ubs", "hhs"])
    def test_each_strategy_reaches_perfect_f1_with_perfect_workers(self, strategy):
        bc = movie_query(budget=20, latency=10, strategy=strategy)
        result = bc.run()
        truth = skyline(bc.dataset.complete)
        assert result.f1(truth) == 1.0


class TestOnGeneratedData:
    def test_latency_respected(self):
        nba = generate_nba(n_objects=150, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(alpha=0.05, budget=40, latency=4, strategy="fbs")
        result = BayesCrowd(nba, config).run()
        assert result.rounds <= 4
        assert result.tasks_posted <= 40

    def test_budget_respected(self):
        nba = generate_nba(n_objects=150, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(alpha=0.05, budget=17, latency=5, strategy="fbs")
        result = BayesCrowd(nba, config).run()
        assert result.tasks_posted <= 17

    def test_crowdsourcing_improves_over_initial(self):
        nba = generate_nba(n_objects=200, missing_rate=0.15, seed=4)
        config = BayesCrowdConfig(alpha=0.05, budget=60, latency=6, strategy="hhs")
        result = BayesCrowd(nba, config).run()
        truth = skyline(nba.complete)
        assert f1_score(result.answers, truth) >= f1_score(result.initial_answers, truth)

    def test_batches_are_conflict_free(self):
        """The platform enforces the rule; a full run must never trip it."""
        nba = generate_nba(n_objects=150, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(alpha=0.05, budget=40, latency=4, strategy="fbs")
        BayesCrowd(nba, config).run()  # raises ConflictingBatchError on violation

    def test_reproducible_given_seed(self):
        nba = generate_nba(n_objects=120, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(alpha=0.05, budget=30, latency=3, seed=11)
        a = BayesCrowd(nba, config).run()
        b = BayesCrowd(nba, config).run()
        assert a.answers == b.answers
        assert a.tasks_posted == b.tasks_posted

    def test_run_bayescrowd_convenience(self):
        nba = generate_nba(n_objects=80, missing_rate=0.1, seed=2)
        result = run_bayescrowd(nba, BayesCrowdConfig(alpha=0.1, budget=10, latency=2))
        assert result.rounds <= 2


class TestLearnDistributions:
    def test_uniform_source(self):
        ds = sample_dataset()
        dists = learn_distributions(ds, BayesCrowdConfig(distribution_source="uniform"))
        assert set(dists) == set(ds.variables())
        for (obj, attr), pmf in dists.items():
            assert pmf == pytest.approx(
                np.full(ds.domain_sizes[attr], 1 / ds.domain_sizes[attr])
            )

    def test_empirical_source(self):
        ds = sample_dataset()
        dists = learn_distributions(
            ds, BayesCrowdConfig(distribution_source="empirical")
        )
        for pmf in dists.values():
            assert pmf.sum() == pytest.approx(1.0)

    def test_bayesnet_source_falls_back_on_tiny_data(self):
        # The movie sample has only two complete rows: empirical fallback.
        ds = sample_dataset()
        dists = learn_distributions(ds, BayesCrowdConfig(distribution_source="bayesnet"))
        for pmf in dists.values():
            assert pmf.sum() == pytest.approx(1.0)

    def test_bayesnet_source_on_generated_data(self):
        nba = generate_nba(n_objects=300, missing_rate=0.1, seed=1)
        dists = learn_distributions(nba, BayesCrowdConfig())
        assert set(dists) == set(nba.variables())
        for pmf in dists.values():
            assert pmf.sum() == pytest.approx(1.0)
            assert (pmf >= 0).all()

    def test_bn_posteriors_beat_uniform_on_correlated_data(self):
        """The learned posteriors should put more mass on the true value
        than the uniform baseline does, on average.  Needs enough complete
        rows for BIC to accept edges (~600 at 8 levels), hence n=2000."""
        nba = generate_nba(n_objects=2000, missing_rate=0.1, seed=6)
        learned = learn_distributions(nba, BayesCrowdConfig())
        total_learned = 0.0
        total_uniform = 0.0
        n = 0
        for variable, pmf in learned.items():
            true_value = nba.true_value(*variable)
            total_learned += float(pmf[true_value])
            total_uniform += 1.0 / nba.domain_sizes[variable[1]]
            n += 1
        assert total_learned / n > total_uniform / n


class TestPlatformIntegration:
    def test_external_platform_stats_match_result(self):
        nba = generate_nba(n_objects=100, missing_rate=0.1, seed=3)
        platform = SimulatedCrowdPlatform(nba, rng=np.random.default_rng(0))
        config = BayesCrowdConfig(alpha=0.1, budget=20, latency=4)
        result = BayesCrowd(nba, config, platform=platform).run()
        assert platform.stats.tasks_posted == result.tasks_posted
        assert platform.stats.rounds == result.rounds

    def test_missing_platform_without_ground_truth_raises(self):
        nba = generate_nba(n_objects=60, missing_rate=0.1, seed=3)
        blind = nba.__class__(
            values=nba.values, domain_sizes=nba.domain_sizes, complete=None
        )
        config = BayesCrowdConfig(alpha=0.1, budget=10, latency=2)
        bc = BayesCrowd(blind, config)
        with pytest.raises(RuntimeError):
            bc.run()


class TestResultEnrichment:
    def test_answer_probabilities_and_ranking(self):
        nba = generate_nba(n_objects=120, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(alpha=0.08, budget=10, latency=2, seed=0)
        result = BayesCrowd(nba, config).run()
        assert set(result.answer_probabilities) == set(result.answers)
        for obj in result.certain_answers:
            assert result.answer_probabilities[obj] == 1.0
        for obj, p in result.answer_probabilities.items():
            assert p > config.answer_threshold or obj in result.certain_answers
        ranked = result.ranked_answers()
        probs = [p for __, p in ranked]
        assert probs == sorted(probs, reverse=True)
        assert {obj for obj, __ in ranked} == set(result.answers)

    def test_engine_stats_present(self):
        nba = generate_nba(n_objects=80, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(alpha=0.08, budget=6, latency=2, seed=0)
        result = BayesCrowd(nba, config).run()
        assert result.engine_stats["computations"] > 0
        assert result.engine_stats["cache_hits"] >= 0


class TestWeightedAggregationConfig:
    def test_weighted_aggregation_runs(self):
        nba = generate_nba(n_objects=100, missing_rate=0.1, seed=2)
        config = BayesCrowdConfig(
            alpha=0.08, budget=12, latency=3, worker_accuracy=0.8,
            aggregation="weighted", calibration_questions=10, seed=0,
        )
        result = BayesCrowd(nba, config).run()
        assert result.tasks_posted <= 12

    def test_invalid_aggregation_rejected(self):
        with pytest.raises(ValueError):
            BayesCrowdConfig(aggregation="magic")
        with pytest.raises(ValueError):
            BayesCrowdConfig(calibration_questions=0)

    def test_weighted_at_least_as_accurate_with_noisy_workers(self):
        nba = generate_nba(n_objects=200, missing_rate=0.12, seed=14)
        truth = skyline(nba.complete)
        scores = {}
        for aggregation in ("majority", "weighted"):
            config = BayesCrowdConfig(
                alpha=0.05, budget=60, latency=6, worker_accuracy=0.72,
                aggregation=aggregation, seed=4,
            )
            result = BayesCrowd(nba, config).run()
            scores[aggregation] = f1_score(result.answers, truth)
        # Homogeneous pools make weighting ~neutral; it must not hurt much.
        assert scores["weighted"] >= scores["majority"] - 0.05


class TestEarlyStopping:
    def test_entropy_epsilon_saves_budget(self):
        nba = generate_nba(n_objects=150, missing_rate=0.1, seed=2)
        eager = BayesCrowdConfig(alpha=0.05, budget=120, latency=12, seed=0)
        lazy = BayesCrowdConfig(
            alpha=0.05, budget=120, latency=12, seed=0, entropy_epsilon=0.4
        )
        full = BayesCrowd(nba, eager).run()
        stopped = BayesCrowd(nba, lazy).run()
        assert stopped.tasks_posted <= full.tasks_posted
        # And accuracy should not collapse.
        truth = skyline(nba.complete)
        assert f1_score(stopped.answers, truth) >= f1_score(full.answers, truth) - 0.1

    def test_epsilon_zero_is_disabled(self):
        config = BayesCrowdConfig(entropy_epsilon=0.0)
        assert config.entropy_epsilon == 0.0

    def test_invalid_epsilon(self):
        with pytest.raises(ValueError):
            BayesCrowdConfig(entropy_epsilon=1.5)
