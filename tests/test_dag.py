"""Unit tests for the DAG type."""

import pytest

from repro.bayesnet import DAG, CycleError, dag_from_edges


class TestEdges:
    def test_add_and_query(self):
        dag = DAG(3)
        dag.add_edge(0, 1)
        assert dag.has_edge(0, 1)
        assert not dag.has_edge(1, 0)
        assert dag.parents(1) == frozenset({0})
        assert dag.children(0) == frozenset({1})
        assert dag.n_edges() == 1

    def test_self_loop_rejected(self):
        dag = DAG(2)
        with pytest.raises(CycleError):
            dag.add_edge(0, 0)

    def test_cycle_rejected(self):
        dag = DAG(3)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        with pytest.raises(CycleError):
            dag.add_edge(2, 0)

    def test_remove_edge(self):
        dag = DAG(2)
        dag.add_edge(0, 1)
        dag.remove_edge(0, 1)
        assert dag.n_edges() == 0

    def test_remove_missing_edge_raises(self):
        with pytest.raises(ValueError):
            DAG(2).remove_edge(0, 1)

    def test_out_of_range_node(self):
        with pytest.raises(ValueError):
            DAG(2).add_edge(0, 5)


class TestReversal:
    def test_reverse(self):
        dag = DAG(2)
        dag.add_edge(0, 1)
        dag.reverse_edge(0, 1)
        assert dag.has_edge(1, 0)
        assert not dag.has_edge(0, 1)

    def test_reverse_creating_cycle_restores_state(self):
        dag = DAG(3)
        dag.add_edge(0, 1)
        dag.add_edge(0, 2)
        dag.add_edge(2, 1)
        # Reversing 0 -> 1 would give 1 -> 0 -> 2 -> 1: a cycle.
        with pytest.raises(CycleError):
            dag.reverse_edge(0, 1)
        assert dag.has_edge(0, 1)

    def test_can_reverse_is_side_effect_free(self):
        dag = DAG(3)
        dag.add_edge(0, 1)
        dag.add_edge(1, 2)
        before = list(dag.edges())
        assert dag.can_reverse_edge(0, 1)
        assert list(dag.edges()) == before


class TestTopology:
    def test_topological_order(self):
        dag = dag_from_edges(4, iter([(0, 1), (1, 2), (0, 3)]))
        order = dag.topological_order()
        assert order.index(0) < order.index(1) < order.index(2)
        assert order.index(0) < order.index(3)

    def test_has_path(self):
        dag = dag_from_edges(4, iter([(0, 1), (1, 2)]))
        assert dag.has_path(0, 2)
        assert not dag.has_path(2, 0)
        assert dag.has_path(1, 1)

    def test_copy_independent(self):
        dag = dag_from_edges(3, iter([(0, 1)]))
        clone = dag.copy()
        clone.add_edge(1, 2)
        assert not dag.has_edge(1, 2)
        assert clone.has_edge(1, 2)

    def test_equality(self):
        a = dag_from_edges(3, iter([(0, 1)]))
        b = dag_from_edges(3, iter([(0, 1)]))
        c = dag_from_edges(3, iter([(1, 0)]))
        assert a == b
        assert a != c
