"""Tests for the crowd-assisted top-k dominating query extension."""

import numpy as np
import pytest

from repro.datasets import MISSING, IncompleteDataset, generate_nba
from repro.metrics import f1_score
from repro.probability import DistributionStore, ProbabilityEngine
from repro.topk import (
    CrowdTopKDominating,
    TopKConfig,
    build_score_models,
    dominance_scores,
    expected_scores,
    top_k_dominating,
)


class TestGroundTruth:
    def test_chain_scores(self):
        values = np.array([[1, 1], [2, 2], [3, 3]])
        assert dominance_scores(values).tolist() == [0, 1, 2]

    def test_incomparable_objects_score_zero(self):
        values = np.array([[3, 0], [0, 3]])
        assert dominance_scores(values).tolist() == [0, 0]

    def test_equal_rows_score_zero(self):
        values = np.array([[2, 2], [2, 2]])
        assert dominance_scores(values).tolist() == [0, 0]

    def test_top_k_selection(self):
        values = np.array([[1, 1], [2, 2], [3, 3], [0, 0]])
        assert top_k_dominating(values, 2) == [1, 2]

    def test_top_k_tie_break_by_index(self):
        values = np.array([[3, 0], [0, 3], [1, 1]])
        # scores: 1, 1, 0 -> top-2 = {0, 1}
        assert top_k_dominating(values, 2) == [0, 1]

    def test_rejects_bad_k(self):
        with pytest.raises(ValueError):
            top_k_dominating(np.zeros((2, 2)), 0)


class TestScoreModels:
    def _tiny(self):
        # o1 = (2, ?), o2 = (1, 1), o3 = (3, 3)
        values = np.array([[2, MISSING], [1, 1], [3, 3]])
        ds = IncompleteDataset(values=values, domain_sizes=[4, 4])
        return ds

    def test_certain_victims_counted_in_base(self):
        ds = self._tiny()
        models = build_score_models(ds)
        # o3 = (3,3) certainly dominates o2 = (1,1).
        assert models[2].base_score >= 1

    def test_uncertain_victims_become_clauses(self):
        ds = self._tiny()
        models = build_score_models(ds)
        # o1 = (2, ?) possibly dominates o2 = (1, 1): escape clause open.
        assert len(models[0].open_clauses) >= 1

    def test_expected_scores_bounded(self, nba_small):
        models = build_score_models(nba_small)
        store = DistributionStore(
            {v: np.full(nba_small.domain_sizes[v[1]], 1.0 / nba_small.domain_sizes[v[1]])
             for v in nba_small.variables()}
        )
        engine = ProbabilityEngine(store)
        for obj, score in expected_scores(models, engine).items():
            lo, hi = models[obj].score_bounds()
            assert lo - 1e-9 <= score <= hi + 1e-9

    def test_oracle_simplification_recovers_true_scores(self, nba_small):
        """Resolving every clause against ground truth must yield the exact
        dominance scores of the complete data."""
        models = build_score_models(nba_small)
        assignment = {v: nba_small.true_value(*v) for v in nba_small.variables()}
        truth = dominance_scores(nba_small.complete)
        for obj, model in models.items():
            model.simplify_with(lambda e: e.evaluate(assignment))
            assert model.decided()
            assert model.base_score == truth[obj], "score mismatch for %d" % obj

    def test_variance_zero_when_decided(self):
        model_engine_store = DistributionStore({})
        engine = ProbabilityEngine(model_engine_store)
        from repro.topk.scores import ScoredObject

        model = ScoredObject(obj=0, base_score=3)
        assert model.score_variance(engine) == 0.0
        assert model.decided()


class TestCrowdTopK:
    def test_unbounded_budget_recovers_truth(self):
        nba = generate_nba(n_objects=100, missing_rate=0.1, seed=4)
        truth = top_k_dominating(nba.complete, 8)
        config = TopKConfig(k=8, budget=10_000, latency=1_000, seed=0)
        result = CrowdTopKDominating(nba, config).run()
        assert result.answers == truth

    def test_budget_improves_over_initial(self):
        nba = generate_nba(n_objects=150, missing_rate=0.15, seed=7)
        truth = top_k_dominating(nba.complete, 10)
        config = TopKConfig(k=10, budget=60, latency=6, seed=0)
        result = CrowdTopKDominating(nba, config).run()
        assert f1_score(result.answers, truth) >= f1_score(result.initial_answers, truth)

    def test_constraints_respected(self):
        nba = generate_nba(n_objects=100, missing_rate=0.1, seed=4)
        config = TopKConfig(k=5, budget=14, latency=3, seed=0)
        result = CrowdTopKDominating(nba, config).run()
        assert result.tasks_posted <= 14
        assert result.rounds <= 3
        assert len(result.answers) == 5

    def test_k_larger_than_dataset_rejected(self):
        nba = generate_nba(n_objects=20, missing_rate=0.1, seed=4)
        with pytest.raises(ValueError):
            CrowdTopKDominating(nba, TopKConfig(k=30))

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            TopKConfig(k=0)
        with pytest.raises(ValueError):
            TopKConfig(budget=-1)
