"""Tests for the distribution store and the three probability methods."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctable import (
    Condition,
    Expression,
    Relation,
    Var,
    VariableConstraints,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)
from repro.probability import (
    ADPLL,
    DistributionStore,
    EnumerationLimitExceeded,
    ProbabilityEngine,
    adaptive_approx_probability,
    adpll_probability,
    approx_probability,
    naive_probability,
)

V = (0, 0)
W = (1, 0)
U = (2, 0)


def uniform_store(domain=4, variables=(V, W, U), constraints=None):
    pmf = np.full(domain, 1.0 / domain)
    return DistributionStore({v: pmf.copy() for v in variables}, constraints)


class TestDistributionStore:
    def test_rejects_unnormalized(self):
        with pytest.raises(ValueError):
            DistributionStore({V: np.array([0.5, 0.4])})

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            DistributionStore({V: np.array([1.5, -0.5])})

    def test_pmf_lookup(self):
        store = uniform_store()
        assert store.pmf(V) == pytest.approx([0.25] * 4)
        with pytest.raises(KeyError):
            store.pmf((9, 9))

    def test_prob_var_greater_const(self):
        store = uniform_store()
        assert store.prob_expression(var_greater_const(0, 0, 1)) == pytest.approx(0.5)
        assert store.prob_expression(var_greater_const(0, 0, 3)) == 0.0

    def test_prob_const_greater_var(self):
        store = uniform_store()
        assert store.prob_expression(const_greater_var(2, 0, 0)) == pytest.approx(0.5)
        assert store.prob_expression(const_greater_var(0, 0, 0)) == 0.0
        assert store.prob_expression(const_greater_var(9, 0, 0)) == pytest.approx(1.0)

    def test_prob_var_greater_var_uniform(self):
        store = uniform_store()
        # P(X > Y) for iid uniform over 4 values: (1 - P(tie)) / 2 = 0.375.
        assert store.prob_expression(var_greater_var(0, 1, 0)) == pytest.approx(0.375)

    def test_prob_var_var_different_domains(self):
        store = DistributionStore(
            {V: np.full(6, 1 / 6), W: np.full(3, 1 / 3)}
        )
        # Brute force check.
        expected = sum(
            (1 / 6) * (1 / 3) for x in range(6) for y in range(3) if x > y
        )
        assert store.prob_expression(var_greater_var(0, 1, 0)) == pytest.approx(expected)

    def test_constraints_restrict_pmf(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        constraints.apply_answer(var_greater_const(0, 0, 1), Relation.GREATER)
        assert store.pmf(V) == pytest.approx([0, 0, 0.5, 0.5])
        assert store.support(V).tolist() == [2, 3]

    def test_expression_cache_respects_constraint_changes(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        e = var_greater_const(0, 0, 1)
        assert store.prob_expression(e) == pytest.approx(0.5)
        constraints.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert store.prob_expression(e) == pytest.approx(1.0)

    def test_sample_assignment(self, rng):
        store = uniform_store()
        sample = store.sample_assignment([V, W], rng)
        assert set(sample) == {V, W}
        assert all(0 <= v < 4 for v in sample.values())


class TestNaive:
    def test_constants(self):
        store = uniform_store()
        assert naive_probability(Condition.true(), store) == 1.0
        assert naive_probability(Condition.false(), store) == 0.0

    def test_single_expression(self):
        store = uniform_store()
        c = Condition.of([[var_greater_const(0, 0, 1)]])
        assert naive_probability(c, store) == pytest.approx(0.5)

    def test_enumeration_limit(self):
        store = uniform_store()
        c = Condition.of([[var_greater_var(0, 1, 0), var_greater_var(1, 2, 0)]])
        with pytest.raises(EnumerationLimitExceeded):
            naive_probability(c, store, max_assignments=10)

    def test_paper_example_o5(self, movies_ctable, movies_store):
        assert naive_probability(
            movies_ctable.condition(4), movies_store
        ) == pytest.approx(0.823, abs=5e-4)


class TestADPLL:
    def test_constants(self):
        store = uniform_store()
        assert adpll_probability(Condition.true(), store) == 1.0
        assert adpll_probability(Condition.false(), store) == 0.0

    def test_independent_product_rule(self):
        store = uniform_store()
        c = Condition.of(
            [[var_greater_const(0, 0, 1)], [var_greater_const(1, 0, 0)]]
        )
        assert adpll_probability(c, store) == pytest.approx(0.5 * 0.75)

    def test_disjunctive_rule(self):
        store = uniform_store()
        c = Condition.of([[var_greater_const(0, 0, 1), var_greater_const(1, 0, 1)]])
        assert adpll_probability(c, store) == pytest.approx(1 - 0.5 * 0.5)

    def test_correlated_clauses_branch(self):
        store = uniform_store()
        # Same variable in two clauses: Pr(X>1 and X>2) = Pr(X>2) = 0.25.
        c = Condition.of(
            [[var_greater_const(0, 0, 1)], [var_greater_const(0, 0, 2)]]
        )
        assert adpll_probability(c, store) == pytest.approx(0.25)

    def test_paper_example_o5(self, movies_ctable, movies_store):
        assert adpll_probability(
            movies_ctable.condition(4), movies_store
        ) == pytest.approx(0.823, abs=5e-4)

    def test_ablation_flags_agree(self, movies_ctable, movies_store):
        condition = movies_ctable.condition(4)
        expected = adpll_probability(condition, movies_store)
        for components in (True, False):
            for memo in (True, False):
                value = ADPLL(
                    movies_store, use_components=components, use_memo=memo
                ).probability(condition)
                assert value == pytest.approx(expected)

    def test_branch_counter_advances(self, movies_ctable, movies_store):
        solver = ADPLL(movies_store)
        solver.probability(movies_ctable.condition(4))
        assert solver.branch_count > 0

    def test_memo_respects_constraint_updates(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        solver = ADPLL(store)
        c = Condition.of(
            [[var_greater_const(0, 0, 1)], [var_greater_const(0, 0, 2)]]
        )
        assert solver.probability(c) == pytest.approx(0.25)
        constraints.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        assert solver.probability(c) == pytest.approx(1.0)


class TestApproxCount:
    def test_constants_skip_sampling(self):
        store = uniform_store()
        assert approx_probability(Condition.true(), store).probability == 1.0
        assert approx_probability(Condition.false(), store).probability == 0.0

    def test_converges_to_exact(self, rng):
        store = uniform_store()
        c = Condition.of([[var_greater_var(0, 1, 0)], [var_greater_var(0, 2, 0)]])
        exact = naive_probability(c, store)
        estimate = approx_probability(c, store, n_samples=20_000, rng=rng)
        assert estimate.probability == pytest.approx(exact, abs=0.02)

    def test_interval_contains_estimate(self, rng):
        store = uniform_store()
        c = Condition.of([[var_greater_const(0, 0, 1)]])
        estimate = approx_probability(c, store, n_samples=500, rng=rng)
        lo, hi = estimate.interval()
        assert lo <= estimate.probability <= hi

    def test_adaptive_stops_on_tolerance(self, rng):
        store = uniform_store()
        c = Condition.of([[var_greater_const(0, 0, 1)]])
        estimate = adaptive_approx_probability(
            c, store, tolerance=0.05, batch_size=200, rng=rng
        )
        assert estimate.half_width < 0.05
        assert estimate.n_samples <= 50_000

    def test_rejects_bad_parameters(self, rng):
        store = uniform_store()
        c = Condition.of([[var_greater_const(0, 0, 1)]])
        with pytest.raises(ValueError):
            approx_probability(c, store, n_samples=0)
        with pytest.raises(ValueError):
            adaptive_approx_probability(c, store, tolerance=0.0)

    def test_adaptive_keeps_sampling_on_rare_event(self):
        # Regression: the Wald half-width degenerates to ~1e-7 when the
        # first batch has zero hits, so the loop used to stop at
        # n == batch_size and confidently report Pr = 0 for rare events.
        # The Wilson half-width stays ~0.0038 at 0/500, above tolerance.
        store = uniform_store(domain=10_000, variables=(V,))
        c = Condition.of([[var_greater_const(0, 0, 9998)]])  # Pr = 1e-4
        estimate = adaptive_approx_probability(
            c, store, tolerance=0.002, batch_size=500,
            rng=np.random.default_rng(0),
        )
        assert estimate.n_samples > 500
        assert estimate.half_width > 1e-4
        lo, hi = estimate.interval()
        assert lo <= 1e-4 <= hi

    def test_no_rng_estimates_are_independent(self):
        # Regression: both entry points shared a per-call default_rng(0)
        # fallback, so repeated "independent" estimates were identical.
        store = uniform_store()
        c = Condition.of([[var_greater_const(0, 0, 1)]])  # Pr = 0.5
        fixed = {
            approx_probability(c, store, n_samples=200).probability
            for _ in range(5)
        }
        assert len(fixed) > 1
        adaptive = {
            adaptive_approx_probability(
                c, store, tolerance=0.04, batch_size=200
            ).probability
            for _ in range(5)
        }
        assert len(adaptive) > 1


class TestEngine:
    def test_method_dispatch(self, movies_ctable, movies_store):
        condition = movies_ctable.condition(4)
        for method in ("adpll", "naive"):
            engine = ProbabilityEngine(movies_store, method=method)
            assert engine.probability(condition) == pytest.approx(0.823, abs=5e-4)
        approx_engine = ProbabilityEngine(
            movies_store, method="approx", approx_samples=20_000
        )
        assert approx_engine.probability(condition) == pytest.approx(0.823, abs=0.02)

    def test_unknown_method(self, movies_store):
        with pytest.raises(ValueError):
            ProbabilityEngine(movies_store, method="magic")

    def test_cache_hits(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(4)
        engine.probability(condition)
        engine.probability(condition)
        assert engine.n_cache_hits == 1
        assert engine.n_computations == 1

    def test_cache_invalidation_is_selective(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        c1 = movies_ctable.condition(0)  # only Var(o5, *) variables
        c4 = movies_ctable.condition(3)  # mentions Var(o2, a2) too
        engine.probability(c1)
        engine.probability(c4)
        # Constrain a variable only c4 mentions.
        movies_ctable.constraints.apply_answer(
            var_greater_const(1, 1, 2), Relation.LESS
        )
        engine.probability(c1)  # unaffected -> cache hit
        assert engine.n_cache_hits == 1
        before = engine.n_computations
        engine.probability(c4)  # affected -> recompute
        assert engine.n_computations == before + 1

    def test_callable_interface(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        assert engine(Condition.true()) == 1.0


# ----------------------------------------------------------------------
# property: ADPLL (all flag combinations) agrees with Naive enumeration
# ----------------------------------------------------------------------
@st.composite
def condition_and_store(draw):
    variables = [(o, 0) for o in range(4)]
    domain = draw(st.integers(2, 4))
    pmfs = {}
    for v in variables:
        weights = np.array(
            [draw(st.integers(1, 5)) for __ in range(domain)], dtype=float
        )
        pmfs[v] = weights / weights.sum()
    n_clauses = draw(st.integers(1, 3))
    clauses = []
    for __ in range(n_clauses):
        clause = []
        for __ in range(draw(st.integers(1, 3))):
            kind = draw(st.sampled_from(["vc", "cv", "vv"]))
            v1 = draw(st.sampled_from(variables))
            if kind == "vc":
                clause.append(
                    var_greater_const(v1[0], v1[1], draw(st.integers(0, domain - 1)))
                )
            elif kind == "cv":
                clause.append(
                    const_greater_var(draw(st.integers(0, domain - 1)), v1[0], v1[1])
                )
            else:
                v2 = draw(st.sampled_from([v for v in variables if v != v1]))
                clause.append(Expression(Var(*v1), Var(*v2)))
        clauses.append(clause)
    return Condition.of(clauses), DistributionStore(pmfs)


class TestADPLLAgreesWithNaive:
    @given(condition_and_store())
    @settings(max_examples=150, deadline=None)
    def test_probabilities_match(self, pair):
        condition, store = pair
        exact = naive_probability(condition, store)
        assert adpll_probability(condition, store) == pytest.approx(exact, abs=1e-9)

    @given(condition_and_store())
    @settings(max_examples=60, deadline=None)
    def test_faithful_algorithm3_matches(self, pair):
        """The paper's plain Algorithm 3 (no components, no memo) is exact too."""
        condition, store = pair
        exact = naive_probability(condition, store)
        value = ADPLL(store, use_components=False, use_memo=False).probability(condition)
        assert value == pytest.approx(exact, abs=1e-9)


class TestBranchHeuristics:
    @pytest.mark.parametrize("heuristic", ["frequency", "min_domain", "first"])
    def test_all_heuristics_exact(self, heuristic, movies_ctable, movies_store):
        solver = ADPLL(movies_store, branch_heuristic=heuristic)
        assert solver.probability(movies_ctable.condition(4)) == pytest.approx(
            0.823, abs=5e-4
        )

    def test_unknown_heuristic_rejected(self, movies_store):
        with pytest.raises(ValueError):
            ADPLL(movies_store, branch_heuristic="magic")

    def test_absorption_flag_exact(self, movies_ctable, movies_store):
        solver = ADPLL(movies_store, use_absorption=True)
        assert solver.probability(movies_ctable.condition(4)) == pytest.approx(
            0.823, abs=5e-4
        )

    @given(condition_and_store())
    @settings(max_examples=60, deadline=None)
    def test_heuristics_agree_with_naive(self, pair):
        condition, store = pair
        exact = naive_probability(condition, store)
        for heuristic in ("frequency", "min_domain", "first"):
            value = ADPLL(
                store, branch_heuristic=heuristic, use_absorption=True
            ).probability(condition)
            assert value == pytest.approx(exact, abs=1e-9)


class TestCacheVersionRefresh:
    """Regression: revalidated cache entries must refresh their stored version.

    A cache entry surviving a ``variables_unchanged_since`` scan used to keep
    its original version, so every later hit at the new store version re-paid
    the per-variable scan.  After the fix the first revalidation writes the
    current version back and subsequent hits take the version-equality fast
    path -- observable as the scan count staying flat.
    """

    def counting_store(self, domain=4):
        constraints = VariableConstraints([domain])
        store = uniform_store(domain=domain, constraints=constraints)
        calls = []
        original = store.variables_unchanged_since

        def counted(variables, version):
            calls.append(tuple(variables))
            return original(variables, version)

        store.variables_unchanged_since = counted
        return store, constraints, calls

    def test_engine_cache_refreshes_version_after_scan(self):
        store, constraints, calls = self.counting_store()
        engine = ProbabilityEngine(store)
        condition = Condition.of([[var_greater_const(0, 0, 1)]])
        engine.probability(condition)
        # constrain an UNRELATED variable: version moves, pmfs of V don't
        constraints.apply_answer(var_greater_const(2, 0, 1), Relation.GREATER)
        calls.clear()
        engine.probability(condition)  # stale version -> one revalidation scan
        scans_first_hit = len(calls)
        assert scans_first_hit >= 1
        engine.probability(condition)  # refreshed version -> no further scan
        assert len(calls) == scans_first_hit
        assert engine.n_cache_hits == 2

    def test_adpll_memo_refreshes_version_after_scan(self):
        store, constraints, calls = self.counting_store()
        solver = ADPLL(store)
        condition = Condition.of(
            [
                [var_greater_var(0, 1, 0), var_greater_const(2, 0, 1)],
                [var_greater_var(1, 0, 0)],
            ]
        )
        solver.probability(condition)
        constraints.apply_answer(var_greater_const(3, 0, 1), Relation.GREATER)
        calls.clear()
        solver.probability(condition)  # revalidates memo entries once
        scans_first = len(calls)
        calls.clear()
        solver.probability(condition)  # versions refreshed -> fewer scans
        assert len(calls) < max(scans_first, 1)

    def test_distribution_caches_refresh_version(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        expression = var_greater_const(0, 0, 1)
        store.pmf(V)
        store.prob_expression(expression)
        constraints.apply_answer(var_greater_const(2, 0, 1), Relation.GREATER)
        # revalidate once at the new version...
        store.pmf(V)
        store.prob_expression(expression)
        # ...then the cached entries must carry the current version
        assert store._pmf_cache[V][1] == store.version
        assert store._expr_cache[expression][1] == store.version


class TestADPLLMemoInvalidation:
    """Regression: memo entries must not survive store mutation mid-run."""

    def test_answer_between_calls_changes_result(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        solver = ADPLL(store)
        condition = Condition.of(
            [
                [var_greater_var(0, 1, 0), var_greater_const(2, 0, 2)],
                [var_greater_var(1, 2, 0)],
            ]
        )
        before = solver.probability(condition)
        assert before == pytest.approx(naive_probability(condition, store), abs=1e-9)
        constraints.apply_answer(var_greater_const(0, 0, 2), Relation.GREATER)
        after = solver.probability(condition)
        assert after == pytest.approx(naive_probability(condition, store), abs=1e-9)
        assert abs(after - before) > 0.05

    def test_repeated_answers_keep_memo_exact(self):
        constraints = VariableConstraints([4])
        store = uniform_store(constraints=constraints)
        solver = ADPLL(store)
        condition = Condition.of(
            [
                [var_greater_var(0, 1, 0), var_greater_var(1, 2, 0)],
                [var_greater_const(0, 0, 1), var_greater_const(2, 0, 1)],
            ]
        )
        answers = [
            (var_greater_const(0, 0, 0), Relation.GREATER),
            (var_greater_const(2, 0, 2), Relation.LESS),
            (var_greater_const(1, 0, 1), Relation.GREATER),
        ]
        for expression, relation in answers:
            constraints.apply_answer(expression, relation)
            assert solver.probability(condition) == pytest.approx(
                naive_probability(condition, store), abs=1e-9
            )


class TestIndependentProbabilityPrecision:
    """The independent-clause product must survive tiny probabilities.

    A naive ``1 - prod(1 - p)`` loses all significant digits once ``p``
    drops near machine epsilon; the solver accumulates in log space
    (``log1p``/``expm1``/``fsum``), so results stay relatively accurate.
    The exact reference is computed in ``fractions.Fraction`` arithmetic.
    """

    def tiny_store(self, eps, n_vars):
        pmf = np.array([1.0 - eps, eps])
        pmf /= pmf.sum()
        return DistributionStore({(o, 0): pmf.copy() for o in range(n_vars)})

    def exact_fraction(self, store, clauses):
        from fractions import Fraction

        total = Fraction(1)
        for clause in clauses:
            none_true = Fraction(1)
            for expression in clause:
                p = store.prob_expression(expression)
                none_true *= Fraction(1) - Fraction(p)
            total *= Fraction(1) - none_true
        return total

    @pytest.mark.parametrize("eps", [1e-9, 1e-12, 1e-15])
    def test_wide_clause_tiny_probabilities(self, eps):
        n_vars = 8
        store = self.tiny_store(eps, n_vars)
        clause = [var_greater_const(o, 0, 0) for o in range(n_vars)]
        condition = Condition.of([clause])
        exact = self.exact_fraction(store, [clause])
        value = adpll_probability(condition, store)
        assert exact > 0
        assert value == pytest.approx(float(exact), rel=1e-9)

    def test_many_independent_clauses(self):
        n_vars = 12
        store = self.tiny_store(1e-7, n_vars)
        clauses = [
            [var_greater_const(o, 0, 0) for o in range(start, start + 4)]
            for start in (0, 4, 8)
        ]
        condition = Condition.of(clauses)
        exact = self.exact_fraction(store, clauses)
        value = adpll_probability(condition, store)
        assert value == pytest.approx(float(exact), rel=1e-9)

    @given(
        st.floats(min_value=1e-15, max_value=0.5),
        st.integers(2, 10),
    )
    @settings(max_examples=80, deadline=None)
    def test_property_against_fraction_reference(self, eps, n_vars):
        store = self.tiny_store(eps, n_vars)
        clause = [var_greater_const(o, 0, 0) for o in range(n_vars)]
        condition = Condition.of([clause])
        exact = self.exact_fraction(store, [clause])
        value = adpll_probability(condition, store)
        assert value == pytest.approx(float(exact), rel=1e-9)

    def test_certain_expression_short_circuits(self):
        # p == 1.0 inside a clause must not reach log1p(-1)
        pmf = np.array([0.0, 1.0])
        store = DistributionStore({V: pmf, W: np.array([0.5, 0.5])})
        condition = Condition.of([[var_greater_const(0, 0, 0)]])
        assert adpll_probability(condition, store) == 1.0
