"""Tests for the answer-integrity ledger and contradiction detection."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BayesCrowd, BayesCrowdConfig
from repro.crowd import AnswerLedger, FaultModel, WorkerReliability, vote_shares
from repro.crowd.integrity import LedgerEntry
from repro.ctable import (
    Relation,
    var_greater_const,
    var_greater_var,
)
from repro.datasets import generate_nba
from repro.metrics.accuracy import accuracy_report
from repro.skyline.algorithms import skyline

G, E, L = Relation.GREATER, Relation.EQUAL, Relation.LESS


def fresh_ledger(n_objects=4, domain=6):
    return AnswerLedger(domain_sizes=[domain])


class TestConflictDetection:
    def test_direct_flip_is_flagged(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), G)
        assert ledger.check(var_greater_var(0, 1, 0), L) == "direct"

    def test_transitive_flip_is_flagged(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), G)  # a > b
        ledger.observe(var_greater_var(1, 2, 0), G)  # b > c
        # c > a flips the transitively implied a > c; resolve() already
        # decides the expression, so this surfaces as a direct conflict.
        assert ledger.check(var_greater_var(2, 0, 0), G) == "direct"

    def test_equality_closing_strict_chain_is_a_cycle(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), G)  # a > b
        ledger.observe(var_greater_var(1, 2, 0), G)  # b > c
        # "c equals a" cannot be resolved binarily (both truth values of
        # c > a are compatible with EQUAL being false) but closes a cycle
        # through the strict partial order a > b > c.
        assert ledger.check(var_greater_var(2, 0, 0), E) == "cycle"

    def test_equal_after_strict_order_is_flagged(self):
        # a < b accepted, then "a equals b": binary resolution agrees
        # (both falsify a > b) so only the order graph catches it.
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), L)
        assert ledger.check(var_greater_var(0, 1, 0), E) == "cycle"

    def test_second_pin_empties_domain(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_const(0, 0, 2), E)  # pinned to 2
        reason = ledger.check(var_greater_const(0, 0, 3), E)
        assert reason == "empty-domain"

    def test_consistent_sequence_never_flagged(self):
        ledger = fresh_ledger()
        answers = [
            (var_greater_var(0, 1, 0), G),
            (var_greater_var(1, 2, 0), G),
            (var_greater_var(0, 2, 0), G),  # implied, consistent
            (var_greater_const(0, 0, 2), G),
        ]
        for expression, relation in answers:
            entry = ledger.observe(expression, relation)
            assert entry.status == "applied"
            assert entry.reason is None


class TestLedgerAccounting:
    def test_strict_quarantines_and_counts(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), G)
        entry = ledger.observe(var_greater_var(0, 1, 0), L, strict=True)
        assert entry.status == "quarantined"
        assert entry.reason == "direct"
        assert ledger.answers_aggregated == 2
        assert ledger.answers_applied == 1
        assert ledger.answers_quarantined == 1
        assert ledger.accounting_ok()
        assert [e.seq for e in ledger.quarantined()] == [1]

    def test_non_strict_applies_but_flags(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), G)
        entry = ledger.observe(var_greater_var(0, 1, 0), L, strict=False)
        assert entry.status == "applied"
        assert entry.reason == "direct"
        assert ledger.contradictions_detected == 1
        assert ledger.accounting_ok()

    def test_summary_keys_are_flat_ints(self):
        ledger = fresh_ledger()
        ledger.observe(var_greater_var(0, 1, 0), G)
        summary = ledger.summary()
        assert summary["answers_aggregated"] == 1
        assert summary["conflict_direct"] == 0
        assert all(isinstance(v, int) for v in summary.values())

    def test_reask_bookkeeping(self):
        ledger = fresh_ledger()
        expr = var_greater_var(0, 1, 0)
        assert ledger.reask_attempts(expr) == 0
        assert ledger.note_reask(expr) == 1
        assert ledger.note_reask(expr) == 2
        assert ledger.answers_reasked == 2

    def test_record_rejects_unknown_status(self):
        ledger = fresh_ledger()
        with pytest.raises(ValueError):
            ledger.record(var_greater_var(0, 1, 0), G, status="discarded")

    def test_state_dict_round_trip(self):
        ledger = fresh_ledger()
        ledger.observe(
            var_greater_var(0, 1, 0),
            G,
            round_index=1,
            task_id=7,
            votes=[(3, G), (4, L)],
        )
        ledger.observe(var_greater_var(0, 1, 0), L, strict=True, task_id=8)
        ledger.note_reask(var_greater_var(0, 1, 0))
        state = ledger.state_dict()

        restored = fresh_ledger()
        restored.load_state_dict(state)
        assert restored.answers_aggregated == 2
        assert restored.answers_applied == 1
        assert restored.answers_quarantined == 1
        assert restored.answers_reasked == 1
        assert restored.reask_attempts(var_greater_var(0, 1, 0)) == 1
        first = restored.entries()[0]
        assert first.votes == ((3, G), (4, L))
        assert first.task_id == 7
        assert restored.summary() == ledger.summary()

    def test_entry_round_trips_through_dict(self):
        entry = LedgerEntry(
            seq=0,
            expression=var_greater_const(2, 0, 1),
            relation=E,
            status="quarantined",
            reason="empty-domain",
            votes=((1, E),),
            reask_of=5,
        )
        assert LedgerEntry.from_dict(entry.to_dict()) == entry

    def test_needs_constraints_or_domains(self):
        with pytest.raises(ValueError):
            AnswerLedger()


class TestVoteShares:
    def test_shares_sum_to_one(self):
        shares = vote_shares([G, G, L])
        assert shares[G] == pytest.approx(2 / 3)
        assert shares[L] == pytest.approx(1 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            vote_shares([])


class TestWorkerReliability:
    def test_prior_mean_for_unseen_workers(self):
        tracker = WorkerReliability(prior=(4.0, 1.0))
        assert tracker.accuracy(99) == pytest.approx(0.8)
        assert tracker.prior_mean == pytest.approx(0.8)

    def test_agreement_raises_disagreement_lowers(self):
        tracker = WorkerReliability(prior=(4.0, 1.0))
        for __ in range(10):
            tracker.observe(1, True)
            tracker.observe(2, False)
        assert tracker.accuracy(1) > 0.9
        assert tracker.accuracy(2) < 0.3
        assert tracker.n_observations(1) == 10
        assert tracker.n_workers() == 2

    def test_observe_votes_against_accepted(self):
        tracker = WorkerReliability()
        tracker.observe_votes([(1, G), (2, L)], accepted=G)
        assert tracker.accuracy(1) > tracker.accuracy(2)

    def test_rejects_bad_prior(self):
        with pytest.raises(ValueError):
            WorkerReliability(prior=(0.0, 1.0))

    def test_state_round_trip(self):
        tracker = WorkerReliability(prior=(2.0, 2.0))
        tracker.observe(5, True)
        tracker.observe(5, False)
        restored = WorkerReliability.from_state_dict(tracker.state_dict())
        assert restored.prior == tracker.prior
        assert restored.accuracy(5) == tracker.accuracy(5)


# ----------------------------------------------------------------------
# property: truthful answers from a fixed assignment are never flagged
# ----------------------------------------------------------------------
class TestConsistencyProperty:
    @given(st.integers(0, 10_000))
    @settings(max_examples=60, deadline=None)
    def test_answers_from_total_order_never_flagged(self, seed):
        """Answers read off one fixed value assignment per attribute form
        a consistent set; the detector must never flag any of them, in
        any arrival order."""
        rng = np.random.default_rng(seed)
        n_objects = int(rng.integers(3, 7))
        domain = int(rng.integers(2, 7))
        values = rng.integers(0, domain, size=n_objects)
        ledger = AnswerLedger(domain_sizes=[domain])

        pairs = [
            (a, b)
            for a in range(n_objects)
            for b in range(n_objects)
            if a != b
        ]
        rng.shuffle(pairs)
        for a, b in pairs:
            expression = var_greater_var(a, b, 0)
            if values[a] > values[b]:
                relation = Relation.GREATER
            elif values[a] < values[b]:
                relation = Relation.LESS
            else:
                relation = Relation.EQUAL
            entry = ledger.observe(expression, relation, strict=True)
            assert entry.reason is None, (
                "consistent answer flagged %r: %s %s with values %r"
                % (entry.reason, expression, relation, values.tolist())
            )
            assert entry.status == "applied"
        assert ledger.accounting_ok()
        assert ledger.answers_quarantined == 0


# ----------------------------------------------------------------------
# end-to-end: strict integrity under seeded spam workers
# ----------------------------------------------------------------------
class TestStrictIntegrityEndToEnd:
    @pytest.fixture(scope="class")
    def spam_runs(self):
        # Chosen so the machine-only phase leaves real uncertainty: this
        # configuration posts ~29 crowd tasks over 5 rounds.
        dataset = generate_nba(n_objects=30, missing_rate=0.4, seed=3)
        faults = FaultModel(spam_fraction=0.6)

        def run(**overrides):
            config = BayesCrowdConfig(
                budget=30,
                latency=5,
                worker_accuracy=0.95,
                alpha=0.1,
                seed=3,
                **overrides,
            )
            query = BayesCrowd(dataset, config)
            return query, query.run()

        clean_q, clean = run()
        spam_q, spam = run(faults=faults)
        strict_q, strict = run(faults=faults, strict_integrity=True)
        return {
            "dataset": dataset,
            "clean": clean,
            "spam": spam,
            "strict": strict,
            "strict_query": strict_q,
        }

    def test_applied_answers_always_consistent(self, spam_runs):
        """Strict mode must never fold a contradictory answer into the
        c-table: replaying exactly the applied entries through a fresh
        detector finds zero conflicts."""
        ledger = spam_runs["strict_query"].ledger
        assert ledger is not None and ledger.accounting_ok()
        replay = AnswerLedger(domain_sizes=spam_runs["dataset"].domain_sizes)
        for entry in ledger.applied():
            replayed = replay.observe(entry.expression, entry.relation, strict=True)
            assert replayed.status == "applied"
            assert replayed.reason is None
        assert replay.answers_quarantined == 0

    def test_spam_triggers_quarantine_or_stays_consistent(self, spam_runs):
        strict = spam_runs["strict"].integrity
        # With 60% spam either contradictions surfaced (and were
        # quarantined, never applied) or the spam happened to stay
        # consistent; in both cases nothing contradictory was applied.
        assert strict["answers_quarantined"] == strict["contradictions_detected"]

    def test_strict_f1_not_worse_than_trusting_spam(self, spam_runs):
        truth = skyline(spam_runs["dataset"].complete)
        f1_strict = accuracy_report(spam_runs["strict"].answers, truth).f1
        f1_spam = accuracy_report(spam_runs["spam"].answers, truth).f1
        assert f1_strict >= f1_spam - 1e-9

    def test_reliability_learns_spammers(self, spam_runs):
        reliability = spam_runs["strict"].worker_reliability
        if not reliability:
            pytest.skip("run decided before any votes were recorded")
        # Synthetic spammer identities are negative; honest workers are
        # non-negative.  Spammers must not out-rank honest workers.
        spam_scores = [v for k, v in reliability.items() if k < 0]
        honest_scores = [v for k, v in reliability.items() if k >= 0]
        if spam_scores and honest_scores:
            assert min(honest_scores) >= max(spam_scores) - 0.35

    def test_integrity_counters_exported_on_every_run(self, spam_runs):
        for key in ("clean", "spam", "strict"):
            counters = spam_runs[key].metrics["counters"]
            assert (
                counters["answers_quarantined"] + counters["answers_applied"]
                == counters["answers_aggregated"]
            )
