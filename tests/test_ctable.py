"""Tests for the CTable container and answer updates."""

import pytest

from repro.ctable import (
    Condition,
    Relation,
    build_ctable,
    const_greater_var,
    var_greater_const,
)


class TestViews:
    def test_certain_partitions(self, movies_ctable):
        assert movies_ctable.certain_answers() == [1, 2]
        assert movies_ctable.certain_non_answers() == []
        assert movies_ctable.undecided() == [0, 3, 4]

    def test_open_expressions(self, movies_ctable):
        pairs = list(movies_ctable.open_expressions())
        objs = {o for o, __ in pairs}
        assert objs == {0, 3, 4}
        assert movies_ctable.n_open_expressions() == sum(
            len(movies_ctable.condition(o).distinct_expressions()) for o in (0, 3, 4)
        )

    def test_objects_mentioning(self, movies_ctable):
        # Var(o5, a2) appears in phi(o1), phi(o4), phi(o5).
        assert movies_ctable.objects_mentioning((4, 1)) == frozenset({0, 3, 4})
        # Var(o2, a2) appears in phi(o4) and phi(o5).
        assert movies_ctable.objects_mentioning((1, 1)) == frozenset({3, 4})

    def test_must_cover_every_object(self, movies):
        with pytest.raises(ValueError):
            from repro.ctable.ctable import CTable

            CTable(dataset=movies, conditions={0: Condition.true()})


class TestAnswerUpdates:
    def test_example4_round_one(self, movies_ctable):
        """Answers Var(o5,a4)<4 and Var(o5,a3)=3 give the Table 5 c-table."""
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        # Table 5: phi(o1) = true.
        assert ct.condition(0).is_true
        # phi(o4) keeps Var(o2,a2)<3 and [Var(o5,a2)<3 v Var(o5,a4)<2].
        phi4 = ct.condition(3)
        assert not phi4.is_constant
        assert phi4.variables() == {(1, 1), (4, 1), (4, 3)}
        # phi(o5) reduces to Var(o5,a2) > 2 ... but only after also using
        # the Var(o5,a2) > Var(o2,a2) expression remains open.
        phi5 = ct.condition(4)
        assert not phi5.is_constant
        assert (4, 2) not in phi5.variables()

    def test_example4_round_two_resolves(self, movies_ctable):
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        ct.apply_answer(var_greater_const(4, 1, 2), Relation.GREATER)
        ct.apply_answer(const_greater_var(3, 1, 1), Relation.LESS)
        # Example 4 conclusion: phi(o4) = false, phi(o5) = true.
        assert ct.condition(3).is_false
        assert ct.condition(4).is_true
        assert ct.certain_answers() == [0, 1, 2, 4]
        assert not ct.has_open_expressions()

    def test_var_index_pruned_after_updates(self, movies_ctable):
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        # phi(o1) became true, so o1 must leave the per-variable index.
        assert 0 not in ct.objects_mentioning((4, 1))

    def test_equal_answer_resolves_strict_inequality_false(self, movies_ctable):
        ct = movies_ctable
        # Var(o5,a3) = 3 makes "Var(o5,a3) > 3" false in phi(o5).
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        phi5 = ct.condition(4)
        assert var_greater_const(4, 2, 3) not in phi5.distinct_expressions()

    def test_cross_condition_propagation(self, movies_ctable):
        """Answering a task selected for one object simplifies others too."""
        ct = movies_ctable
        # Var(o5,a2) appears in phi(o1), phi(o4) and phi(o5); pin it high.
        ct.apply_answer(var_greater_const(4, 1, 2), Relation.GREATER)
        # phi(o5)'s first clause now satisfied by bound resolution only if
        # the bound decides "Var(o5,a2) > 2": it does (allowed = {3..9}).
        phi5 = ct.condition(4)
        assert var_greater_const(4, 1, 2) not in phi5.distinct_expressions()


class TestResultSet:
    def test_without_probability_only_certain(self, movies_ctable):
        assert movies_ctable.result_set() == [1, 2]

    def test_with_probability_threshold(self, movies_ctable, movies_store):
        from repro.probability import ProbabilityEngine

        engine = ProbabilityEngine(movies_store)
        result = movies_ctable.result_set(engine.probability, threshold=0.5)
        # Pr(phi(o1)) = 0.8 and Pr(phi(o5)) = 0.823 exceed 0.5; o4 at 0.153 does not.
        assert result == [0, 1, 2, 4]

    def test_threshold_extremes(self, movies_ctable, movies_store):
        from repro.probability import ProbabilityEngine

        engine = ProbabilityEngine(movies_store)
        everything = movies_ctable.result_set(engine.probability, threshold=0.0)
        assert everything == [0, 1, 2, 3, 4]
        only_certain = movies_ctable.result_set(engine.probability, threshold=1.0)
        assert only_certain == [1, 2]


class TestSetCondition:
    def test_set_condition_updates_index(self, movies_ctable):
        ct = movies_ctable
        ct.set_condition(0, Condition.true())
        assert 0 not in ct.objects_mentioning((4, 1))
        new_cond = Condition.of([[var_greater_const(4, 1, 5)]])
        ct.set_condition(0, new_cond)
        assert 0 in ct.objects_mentioning((4, 1))


def recounted_frequencies(ctable):
    from collections import Counter

    counts = Counter()
    for condition in ctable.conditions.values():
        counts.update(condition.expression_counts())
    return counts


class TestExpressionFrequencyIndex:
    """The incremental index must always equal a from-scratch recount."""

    def test_matches_recount_after_build(self, movies_ctable):
        assert movies_ctable.expression_frequencies() == recounted_frequencies(
            movies_ctable
        )

    def test_updates_incrementally_on_answers(self, movies_ctable):
        ct = movies_ctable
        ct.apply_answer(var_greater_const(4, 3, 4), Relation.LESS)
        assert ct.expression_frequencies() == recounted_frequencies(ct)
        ct.apply_answer(var_greater_const(4, 2, 3), Relation.EQUAL)
        assert ct.expression_frequencies() == recounted_frequencies(ct)

    def test_updates_on_set_condition(self, movies_ctable):
        ct = movies_ctable
        expression = var_greater_const(4, 1, 5)
        assert ct.expression_frequency(expression) == 0
        ct.set_condition(0, Condition.of([[expression]]))
        assert ct.expression_frequency(expression) == 1
        assert ct.expression_frequencies() == recounted_frequencies(ct)
        ct.set_condition(0, Condition.true())
        assert ct.expression_frequency(expression) == 0
        # Zeroed entries are dropped, not kept at zero.
        assert expression not in ct.expression_frequencies()

    def test_counts_repeats_within_a_condition(self, movies_ctable):
        ct = movies_ctable
        expression = var_greater_const(4, 1, 5)
        ct.set_condition(
            0, Condition.of([[expression], [expression, var_greater_const(4, 2, 5)]])
        )
        assert ct.expression_frequency(expression) == 2

    def test_returned_counter_is_a_copy(self, movies_ctable):
        counts = movies_ctable.expression_frequencies()
        counts.clear()
        assert movies_ctable.expression_frequencies() == recounted_frequencies(
            movies_ctable
        )
