"""Unit + property tests for dominance and skyline computation."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.skyline import (
    dominance_matrix,
    dominates,
    is_skyline_member,
    skyline,
    skyline_layers,
)

matrices = st.integers(2, 25).flatmap(
    lambda n: st.integers(1, 4).flatmap(
        lambda d: st.lists(
            st.lists(st.integers(0, 5), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
)


class TestDominates:
    def test_strictly_better_everywhere(self):
        assert dominates([3, 3], [1, 1])

    def test_better_somewhere_equal_elsewhere(self):
        assert dominates([3, 1], [1, 1])

    def test_equal_rows_do_not_dominate(self):
        assert not dominates([2, 2], [2, 2])

    def test_incomparable(self):
        assert not dominates([3, 0], [0, 3])
        assert not dominates([0, 3], [3, 0])

    def test_movie_example(self):
        # Introduction: m2 = (4,2,3) dominates m1 = (3,2,1).
        assert dominates([4, 2, 3], [3, 2, 1])
        assert not dominates([2, 3, 2], [3, 2, 1])

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            dominates([1, 2], [1, 2, 3])


class TestSkyline:
    def test_paper_intro_movies(self):
        # m1=(3,2,1), m2=(4,2,3), m3=(2,3,2): skyline is {m2, m3}.
        values = np.array([[3, 2, 1], [4, 2, 3], [2, 3, 2]])
        assert skyline(values) == [1, 2]

    def test_single_object(self):
        assert skyline(np.array([[1, 1]])) == [0]

    def test_empty(self):
        assert skyline(np.zeros((0, 3))) == []

    def test_duplicates_all_kept(self):
        values = np.array([[2, 2], [2, 2], [1, 1]])
        assert skyline(values) == [0, 1]

    def test_chain(self):
        values = np.array([[1, 1], [2, 2], [3, 3]])
        assert skyline(values) == [2]

    def test_rejects_1d(self):
        with pytest.raises(ValueError):
            skyline(np.array([1, 2, 3]))

    @given(matrices)
    @settings(max_examples=80, deadline=None)
    def test_members_are_undominated(self, rows):
        values = np.array(rows)
        members = skyline(values)
        assert members, "skyline of a non-empty set is non-empty"
        for index in members:
            assert is_skyline_member(values, index)

    @given(matrices)
    @settings(max_examples=80, deadline=None)
    def test_non_members_are_dominated(self, rows):
        values = np.array(rows)
        members = set(skyline(values))
        matrix = dominance_matrix(values)
        for index in range(values.shape[0]):
            if index not in members:
                assert matrix[:, index].any(), "non-member must be dominated"

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_skyline_idempotent(self, rows):
        values = np.array(rows)
        members = skyline(values)
        again = skyline(values[members])
        assert [members[i] for i in again] == members


class TestSkylineLayers:
    def test_layers_partition_everything(self):
        rng = np.random.default_rng(0)
        values = rng.integers(0, 6, size=(40, 3))
        layers = skyline_layers(values)
        flat = sorted(i for layer in layers for i in layer)
        assert flat == list(range(40))

    def test_first_layer_is_skyline(self):
        rng = np.random.default_rng(1)
        values = rng.integers(0, 6, size=(30, 3))
        layers = skyline_layers(values)
        assert layers[0] == skyline(values)

    def test_chain_gives_singleton_layers(self):
        values = np.array([[1, 1], [2, 2], [3, 3]])
        assert skyline_layers(values) == [[2], [1], [0]]

    @given(matrices)
    @settings(max_examples=40, deadline=None)
    def test_no_layer_member_dominated_within_layer(self, rows):
        values = np.array(rows)
        for layer in skyline_layers(values):
            sub = values[layer]
            assert skyline(sub) == list(range(len(layer)))


class TestDominanceMatrix:
    def test_matches_pairwise_definition(self, rng):
        values = rng.integers(0, 5, size=(15, 3))
        matrix = dominance_matrix(values)
        for i in range(15):
            for j in range(15):
                expected = i != j and dominates(values[i], values[j])
                assert matrix[i, j] == expected

    def test_diagonal_false(self, rng):
        values = rng.integers(0, 4, size=(8, 2))
        assert not dominance_matrix(values).diagonal().any()
