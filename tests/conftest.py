"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.ctable import build_ctable
from repro.datasets import (
    example_distributions,
    generate_nba,
    generate_synthetic,
    sample_dataset,
)
from repro.probability import DistributionStore


@pytest.fixture
def movies():
    """The paper's Table 1 sample dataset."""
    return sample_dataset()


@pytest.fixture
def movies_ctable(movies):
    """C-table of the sample dataset without alpha pruning."""
    return build_ctable(movies, alpha=1.0)


@pytest.fixture
def movies_store(movies_ctable):
    """Distribution store with the Example 3 distributions."""
    return DistributionStore(example_distributions(), movies_ctable.constraints)


@pytest.fixture(scope="session")
def nba_small():
    """A small NBA-like dataset shared across tests (read-only)."""
    return generate_nba(n_objects=120, missing_rate=0.1, seed=3)


@pytest.fixture(scope="session")
def synthetic_small():
    """A small Adult-like synthetic dataset shared across tests (read-only)."""
    return generate_synthetic(n_objects=150, missing_rate=0.1, seed=5)


@pytest.fixture
def rng():
    return np.random.default_rng(42)
