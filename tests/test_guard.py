"""Tests for resource-guarded probability computation.

Covers the ADPLL node-budget/deadline guards, the exact-path circuit
breaker, the engine's degrade-to-sampling fallback, and the end-to-end
guarantee that every reported answer probability is flagged exact or
approximate (with a finite error bound).
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import BayesCrowd, BayesCrowdConfig
from repro.ctable import (
    Condition,
    Expression,
    Var,
    const_greater_var,
    var_greater_const,
    var_greater_var,
)
from repro.datasets import generate_nba
from repro.errors import ResourceBudgetError
from repro.probability import (
    ADPLL,
    CircuitBreaker,
    DistributionStore,
    GuardedProbability,
    ProbabilityEngine,
    adpll_probability,
)

V, W, U = (0, 0), (1, 0), (2, 0)


def uniform_store(domain=4, variables=(V, W, U)):
    pmf = np.full(domain, 1.0 / domain)
    return DistributionStore({v: pmf.copy() for v in variables})


def branching_condition():
    """Clauses sharing variables, so ADPLL must branch (not just multiply
    independent clause probabilities)."""
    return Condition.of(
        [
            [var_greater_var(0, 1, 0), var_greater_const(2, 0, 1)],
            [var_greater_var(1, 2, 0), const_greater_var(2, 0, 0)],
            [var_greater_var(0, 2, 0)],
        ]
    )


class TestGuardedProbability:
    def test_exact_has_zero_bound(self):
        detail = GuardedProbability(0.5, exact=True)
        assert detail.error_bound == 0.0
        assert detail.interval() == (0.5, 0.5)

    def test_exact_with_bound_rejected(self):
        with pytest.raises(ValueError):
            GuardedProbability(0.5, exact=True, error_bound=0.1)

    def test_interval_clamped_to_unit(self):
        detail = GuardedProbability(0.05, exact=False, error_bound=0.1)
        low, high = detail.interval()
        assert low == 0.0
        assert high == pytest.approx(0.15)


class TestADPLLGuards:
    def test_node_budget_trips(self):
        solver = ADPLL(uniform_store(), node_budget=1)
        with pytest.raises(ResourceBudgetError) as excinfo:
            solver.probability(branching_condition())
        assert excinfo.value.spent >= excinfo.value.limit
        assert solver.guard_trips == 1

    def test_deadline_trips(self):
        solver = ADPLL(uniform_store(), deadline_s=1e-12)
        with pytest.raises(ResourceBudgetError):
            solver.probability(branching_condition())
        assert solver.guard_trips == 1

    def test_budget_resets_per_call(self):
        # Large enough for one call; the counter must not accumulate
        # across calls and trip on the second.
        solver = ADPLL(uniform_store(), node_budget=10_000)
        first = branching_condition()
        second = Condition.of(
            [
                [var_greater_var(1, 0, 0), var_greater_const(2, 0, 2)],
                [var_greater_var(2, 1, 0), const_greater_var(3, 0, 0)],
                [var_greater_var(2, 0, 0)],
            ]
        )
        solver.probability(first)
        spent_first = solver.branch_count
        solver.probability(second)  # fresh per-call allowance, no trip
        assert solver.guard_trips == 0
        assert solver.branch_count >= spent_first

    def test_rejects_negative_limits(self):
        with pytest.raises(ValueError):
            ADPLL(uniform_store(), node_budget=-1)
        with pytest.raises(ValueError):
            ADPLL(uniform_store(), deadline_s=-0.5)

    def test_abort_does_not_poison_memo(self):
        """A tripped computation must leave no partial memo entries: the
        same solver with the guard effectively lifted recomputes the
        exact answer."""
        store = uniform_store()
        condition = branching_condition()
        solver = ADPLL(store, node_budget=1)
        with pytest.raises(ResourceBudgetError):
            solver.probability(condition)
        solver.node_budget = 0  # lift the guard
        assert solver.probability(condition) == pytest.approx(
            adpll_probability(condition, uniform_store()), abs=1e-12
        )

    def test_unguarded_result_matches_guarded_headroom(self):
        """With generous limits the guard must be invisible bit-for-bit."""
        store = uniform_store()
        condition = branching_condition()
        plain = ADPLL(uniform_store()).probability(condition)
        guarded = ADPLL(store, node_budget=10**9, deadline_s=3600.0).probability(
            condition
        )
        assert guarded == plain


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(failure_threshold=3)
        for __ in range(2):
            breaker.record_failure()
        assert breaker.state == "closed"
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["breaker_trips"] == 1

    def test_success_resets_consecutive_count(self):
        breaker = CircuitBreaker(failure_threshold=3)
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_open_skips_then_probes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=4)
        breaker.record_failure()
        assert breaker.state == "open"
        decisions = [breaker.allow_exact() for __ in range(4)]
        assert decisions == [False, False, False, True]
        assert breaker.state == "half-open"

    def test_probe_success_closes(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.allow_exact()  # probe
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow_exact()

    def test_probe_failure_reopens(self):
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=1)
        breaker.record_failure()
        assert breaker.allow_exact()
        breaker.record_failure()
        assert breaker.state == "open"

    def test_rejects_bad_parameters(self):
        with pytest.raises(ValueError):
            CircuitBreaker(failure_threshold=0)
        with pytest.raises(ValueError):
            CircuitBreaker(probe_interval=0)

    def test_full_lifecycle_closed_open_halfopen_closed(self):
        """The whole state machine in one pass, with stats checked per leg."""
        breaker = CircuitBreaker(failure_threshold=2, probe_interval=3)
        # leg 1: closed, absorbing sub-threshold failures
        assert breaker.state == "closed"
        assert breaker.allow_exact()
        breaker.record_failure()
        assert breaker.state == "closed"
        # leg 2: threshold reached -> open
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.stats()["breaker_trips"] == 1
        # leg 3: open skips probe_interval - 1 calls, then half-open probe
        assert [breaker.allow_exact() for __ in range(3)] == [False, False, True]
        assert breaker.state == "half-open"
        assert breaker.stats()["breaker_skipped"] == 2
        # leg 4: probe succeeds -> closed again, failure streak forgotten
        breaker.record_success()
        assert breaker.state == "closed"
        assert breaker.allow_exact()
        breaker.record_failure()  # one failure: still under threshold
        assert breaker.state == "closed"
        stats = breaker.stats()
        assert stats["breaker_state"] == "closed"
        assert stats["breaker_trips"] == 1
        assert stats["breaker_successes"] == 1
        assert stats["breaker_failures"] == 3

    def test_lifecycle_with_failed_probe_detour(self):
        """open -> half-open -> (probe fails) -> open -> half-open -> closed."""
        breaker = CircuitBreaker(failure_threshold=1, probe_interval=2)
        breaker.record_failure()
        assert breaker.state == "open"
        assert [breaker.allow_exact() for __ in range(2)] == [False, True]
        breaker.record_failure()  # failed probe: straight back to open
        assert breaker.state == "open"
        # a failed probe re-opens but is not a fresh trip
        assert breaker.stats()["breaker_trips"] == 1
        assert [breaker.allow_exact() for __ in range(2)] == [False, True]
        breaker.record_success()  # second probe lands
        assert breaker.state == "closed"


class TestEngineGuardedFallback:
    def test_fallback_produces_flagged_approximation(self):
        engine = ProbabilityEngine(uniform_store(), node_budget=1)
        condition = branching_condition()
        value = engine.probability(condition)
        assert 0.0 <= value <= 1.0
        detail = engine.probability_detailed(condition)
        assert isinstance(detail, GuardedProbability)
        assert not detail.exact
        assert 0.0 < detail.error_bound < 1.0
        assert detail.value == value
        stats = engine.stats()
        assert stats["guard_fallbacks"] >= 1
        assert stats["guard_trips"] >= 1
        assert stats["guard_active"] == 1

    def test_unguarded_engine_reports_exact(self):
        engine = ProbabilityEngine(uniform_store())
        condition = branching_condition()
        engine.probability(condition)
        detail = engine.probability_detailed(condition)
        assert detail.exact
        assert detail.error_bound == 0.0
        assert "guard_active" in engine.stats()

    def test_constants_always_exact(self):
        engine = ProbabilityEngine(uniform_store(), node_budget=1)
        assert engine.probability_detailed(Condition.true()) == GuardedProbability(
            1.0, exact=True
        )
        assert engine.probability_detailed(Condition.false()).value == 0.0

    def test_breaker_switches_to_approx_first(self):
        """After repeated exact-path blowups the breaker opens and the
        engine stops even attempting exact computation."""
        engine = ProbabilityEngine(
            uniform_store(), node_budget=1, breaker_threshold=2
        )
        conditions = [
            Condition.of(
                [
                    [var_greater_var(0, 1, 0), var_greater_const(2, 0, k)],
                    [var_greater_var(1, 2, 0)],
                    [var_greater_var(0, 2, 0)],
                ]
            )
            for k in range(3)
        ]
        for condition in conditions:
            engine.probability(condition)
        stats = engine.stats()
        assert stats["breaker_state"] != "closed" or stats["breaker_trips"] >= 1
        # Once open, exact attempts are skipped entirely.
        assert stats["breaker_skipped"] >= 1

    def test_guarded_batch_stays_sequential(self, monkeypatch):
        """The pool path shares no breaker state across processes, so a
        guarded engine must not fan batches out."""
        engine = ProbabilityEngine(uniform_store(), node_budget=10**9)
        conditions = [branching_condition() for __ in range(64)]

        def boom(*args, **kwargs):  # pragma: no cover - fails the test
            raise AssertionError("guarded batch must not use the pool")

        monkeypatch.setattr(
            "repro.probability.engine.ProbabilityEngine._compute_parallel",
            boom,
            raising=False,
        )
        values = engine.probability_many(conditions, n_jobs=4)
        assert len(values) == 64


# ----------------------------------------------------------------------
# property: the guard is bit-for-bit invisible while not exhausted
# ----------------------------------------------------------------------
@st.composite
def guarded_case(draw):
    variables = [(o, 0) for o in range(4)]
    domain = draw(st.integers(2, 4))
    pmfs = {}
    for v in variables:
        weights = np.array(
            [draw(st.integers(1, 5)) for __ in range(domain)], dtype=float
        )
        pmfs[v] = weights / weights.sum()
    n_clauses = draw(st.integers(1, 3))
    clauses = []
    for __ in range(n_clauses):
        clause = []
        for __ in range(draw(st.integers(1, 3))):
            kind = draw(st.sampled_from(["vc", "cv", "vv"]))
            v1 = draw(st.sampled_from(variables))
            if kind == "vc":
                clause.append(
                    var_greater_const(v1[0], v1[1], draw(st.integers(0, domain - 1)))
                )
            elif kind == "cv":
                clause.append(
                    const_greater_var(draw(st.integers(0, domain - 1)), v1[0], v1[1])
                )
            else:
                v2 = draw(st.sampled_from([v for v in variables if v != v1]))
                clause.append(Expression(Var(*v1), Var(*v2)))
        clauses.append(clause)
    return Condition.of(clauses), pmfs


class TestGuardBitForBit:
    @given(guarded_case())
    @settings(max_examples=100, deadline=None)
    def test_guarded_equals_unguarded_when_not_exhausted(self, case):
        condition, pmfs = case
        plain = ADPLL(DistributionStore(pmfs)).probability(condition)
        guarded_solver = ADPLL(
            DistributionStore(pmfs), node_budget=10**9, deadline_s=3600.0
        )
        assert guarded_solver.probability(condition) == plain
        assert guarded_solver.guard_trips == 0


# ----------------------------------------------------------------------
# end-to-end: a deadline-starved run flags every probability correctly
# ----------------------------------------------------------------------
class TestDeadlineEndToEnd:
    def test_every_probability_flagged(self):
        dataset = generate_nba(n_objects=30, missing_rate=0.4, seed=3)
        config = BayesCrowdConfig(
            budget=30,
            latency=5,
            worker_accuracy=0.95,
            alpha=0.1,
            seed=3,
            adpll_deadline_s=1e-9,
        )
        result = BayesCrowd(dataset, config).run()
        assert set(result.probability_exact) == set(result.answers)
        for obj in result.answers:
            probability = result.answer_probabilities.get(obj, 1.0)
            assert 0.0 <= probability <= 1.0
            bound = result.probability_error_bounds.get(obj, 0.0)
            if result.probability_exact[obj]:
                assert bound == 0.0
            else:
                assert np.isfinite(bound)
                assert bound > 0.0
        # The starved run must actually have exercised the fallback.
        assert result.approximate_objects()
        assert result.engine_stats.get("guard_fallbacks", 0) >= 1
