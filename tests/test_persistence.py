"""Round-trip tests for dataset and result persistence."""

import json

import numpy as np
import pytest

from repro import BayesCrowd, BayesCrowdConfig, generate_nba
from repro.persistence import (
    FORMAT_VERSION,
    load_dataset,
    load_result,
    result_to_dict,
    save_dataset,
    save_result,
)


class TestDatasetRoundTrip:
    def test_full_round_trip(self, tmp_path, nba_small):
        path = tmp_path / "nba.npz"
        save_dataset(nba_small, path)
        loaded = load_dataset(path)
        assert np.array_equal(loaded.values, nba_small.values)
        assert np.array_equal(loaded.complete, nba_small.complete)
        assert loaded.domain_sizes == nba_small.domain_sizes
        assert loaded.attribute_names == nba_small.attribute_names
        assert loaded.name == nba_small.name

    def test_without_ground_truth(self, tmp_path, movies):
        blind = movies.__class__(
            values=movies.values, domain_sizes=movies.domain_sizes, complete=None
        )
        path = tmp_path / "blind.npz"
        save_dataset(blind, path)
        loaded = load_dataset(path)
        assert loaded.complete is None
        assert np.array_equal(loaded.mask, blind.mask)

    def test_version_check(self, tmp_path, movies):
        path = tmp_path / "m.npz"
        save_dataset(movies, path)
        # Corrupt the version.
        with np.load(path, allow_pickle=True) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.array([99])
        np.savez_compressed(path, **payload, allow_pickle=True)
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_loaded_dataset_runs_a_query(self, tmp_path):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=1)
        path = tmp_path / "ds.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        config = BayesCrowdConfig(alpha=0.1, budget=6, latency=2)
        result = BayesCrowd(loaded, config).run()
        assert result.tasks_posted <= 6


class TestResultRoundTrip:
    def _result(self):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=1)
        config = BayesCrowdConfig(alpha=0.1, budget=8, latency=2)
        return BayesCrowd(dataset, config).run()

    def test_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.answers == result.answers
        assert loaded.tasks_posted == result.tasks_posted
        assert loaded.rounds == result.rounds
        assert loaded.initial_answers == result.initial_answers
        assert len(loaded.history) == len(result.history)
        if result.history:
            assert loaded.history[0].objects == result.history[0].objects

    def test_dict_is_json_serializable(self):
        payload = result_to_dict(self._result())
        text = json.dumps(payload)
        assert str(FORMAT_VERSION) in text or payload["format_version"] == FORMAT_VERSION

    def test_version_check(self, tmp_path):
        path = tmp_path / "result.json"
        save_result(self._result(), path)
        data = json.loads(path.read_text())
        data["format_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_result(path)
