"""Round-trip tests for dataset and result persistence."""

import json

import numpy as np
import pytest

from repro import BayesCrowd, BayesCrowdConfig, FaultModel, generate_nba
from repro.ctable import Relation, var_greater_const, var_greater_var
from repro.errors import CheckpointError
from repro.persistence import (
    CHECKPOINT_VERSION,
    FORMAT_VERSION,
    QueryCheckpoint,
    expression_from_json,
    expression_to_json,
    load_checkpoint,
    load_dataset,
    load_result,
    result_to_dict,
    save_checkpoint,
    save_dataset,
    save_result,
)


class TestDatasetRoundTrip:
    def test_full_round_trip(self, tmp_path, nba_small):
        path = tmp_path / "nba.npz"
        save_dataset(nba_small, path)
        loaded = load_dataset(path)
        assert np.array_equal(loaded.values, nba_small.values)
        assert np.array_equal(loaded.complete, nba_small.complete)
        assert loaded.domain_sizes == nba_small.domain_sizes
        assert loaded.attribute_names == nba_small.attribute_names
        assert loaded.name == nba_small.name

    def test_without_ground_truth(self, tmp_path, movies):
        blind = movies.__class__(
            values=movies.values, domain_sizes=movies.domain_sizes, complete=None
        )
        path = tmp_path / "blind.npz"
        save_dataset(blind, path)
        loaded = load_dataset(path)
        assert loaded.complete is None
        assert np.array_equal(loaded.mask, blind.mask)

    def test_version_check(self, tmp_path, movies):
        path = tmp_path / "m.npz"
        save_dataset(movies, path)
        # Corrupt the version.
        with np.load(path, allow_pickle=True) as archive:
            payload = {k: archive[k] for k in archive.files}
        payload["format_version"] = np.array([99])
        np.savez_compressed(path, **payload, allow_pickle=True)
        with pytest.raises(ValueError):
            load_dataset(path)

    def test_loaded_dataset_runs_a_query(self, tmp_path):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=1)
        path = tmp_path / "ds.npz"
        save_dataset(dataset, path)
        loaded = load_dataset(path)
        config = BayesCrowdConfig(alpha=0.1, budget=6, latency=2)
        result = BayesCrowd(loaded, config).run()
        assert result.tasks_posted <= 6


class TestResultRoundTrip:
    def _result(self):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=1)
        config = BayesCrowdConfig(alpha=0.1, budget=8, latency=2)
        return BayesCrowd(dataset, config).run()

    def test_round_trip(self, tmp_path):
        result = self._result()
        path = tmp_path / "result.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.answers == result.answers
        assert loaded.tasks_posted == result.tasks_posted
        assert loaded.rounds == result.rounds
        assert loaded.initial_answers == result.initial_answers
        assert len(loaded.history) == len(result.history)
        if result.history:
            assert loaded.history[0].objects == result.history[0].objects

    def test_dict_is_json_serializable(self):
        payload = result_to_dict(self._result())
        text = json.dumps(payload)
        assert str(FORMAT_VERSION) in text or payload["format_version"] == FORMAT_VERSION

    def test_version_check(self, tmp_path):
        path = tmp_path / "result.json"
        save_result(self._result(), path)
        data = json.loads(path.read_text())
        data["format_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(ValueError):
            load_result(path)

    def test_degraded_fields_round_trip(self, tmp_path):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=1)
        config = BayesCrowdConfig(
            alpha=0.1,
            budget=8,
            latency=3,
            backoff_base=0.0,
            faults=FaultModel(drop_rate=0.5, transient_every=2),
        )
        result = BayesCrowd(dataset, config).run()
        assert result.degraded
        path = tmp_path / "degraded.json"
        save_result(result, path)
        loaded = load_result(path)
        assert loaded.degraded
        assert loaded.fault_counts == result.fault_counts
        assert loaded.tasks_answered == result.tasks_answered
        assert [r.faults for r in loaded.history] == [
            r.faults for r in result.history
        ]
        assert [r.tasks_answered for r in loaded.history] == [
            r.tasks_answered for r in result.history
        ]

    def test_legacy_result_without_fault_fields_loads(self, tmp_path):
        path = tmp_path / "legacy.json"
        save_result(self._result(), path)
        data = json.loads(path.read_text())
        for key in ("tasks_answered", "degraded", "fault_counts", "resumed"):
            data.pop(key, None)
        for entry in data["history"]:
            for key in ("tasks_answered", "retries", "faults"):
                entry.pop(key, None)
        path.write_text(json.dumps(data))
        loaded = load_result(path)
        assert loaded.tasks_answered == loaded.tasks_posted
        assert not loaded.degraded
        assert loaded.fault_counts == {}
        for record in loaded.history:
            assert record.tasks_answered == record.tasks_posted


class TestAtomicPersistence:
    """Every save is tmp-file + ``os.replace``: a crash mid-write can
    never leave a half-written artifact under the final name, and a
    successful save leaves no stray temp files behind."""

    def test_save_result_is_atomic(self, tmp_path):
        dataset = generate_nba(n_objects=60, missing_rate=0.1, seed=1)
        result = BayesCrowd(
            dataset, BayesCrowdConfig(alpha=0.1, budget=6, latency=2)
        ).run()
        path = tmp_path / "result.json"
        save_result(result, path)
        save_result(result, path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["result.json"]
        assert load_result(path).answers == result.answers

    def test_save_dataset_is_atomic(self, tmp_path, nba_small):
        path = tmp_path / "nba.npz"
        save_dataset(nba_small, path)
        save_dataset(nba_small, path)
        assert [p.name for p in tmp_path.iterdir()] == ["nba.npz"]
        assert np.array_equal(load_dataset(path).values, nba_small.values)


class TestExpressionJson:
    @pytest.mark.parametrize(
        "expression",
        [var_greater_const(4, 1, 2), var_greater_var(0, 1, 2)],
    )
    def test_round_trip(self, expression):
        data = json.loads(json.dumps(expression_to_json(expression)))
        assert expression_from_json(data) == expression


class TestCheckpointRoundTrip:
    def _checkpoint(self):
        return QueryCheckpoint(
            fingerprint={"dataset": "nba", "seed": 3},
            budget_left=7,
            answer_log=[
                (var_greater_const(4, 1, 2), Relation.GREATER),
                (var_greater_var(0, 1, 2), Relation.EQUAL),
            ],
            pending=[(var_greater_const(1, 1, 3), 1)],
            fault_totals={"unanswered": 2},
            degraded=True,
            rng_state={"bit_generator": "PCG64", "has_uint32": 0, "uinteger": 0,
                       "state": {"state": 1, "inc": 2}},
        )

    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(self._checkpoint(), path)
        loaded = load_checkpoint(path)
        assert loaded.fingerprint == {"dataset": "nba", "seed": 3}
        assert loaded.budget_left == 7
        assert loaded.answer_log == self._checkpoint().answer_log
        assert loaded.pending == [(var_greater_const(1, 1, 3), 1)]
        assert loaded.fault_totals == {"unanswered": 2}
        assert loaded.degraded
        assert loaded.rng_state["bit_generator"] == "PCG64"

    def test_argument_order_is_forgiving(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(path, self._checkpoint())
        assert load_checkpoint(path).budget_left == 7

    def test_missing_file_is_checkpoint_error(self, tmp_path):
        with pytest.raises(CheckpointError):
            load_checkpoint(tmp_path / "nope.json")

    def test_garbage_file_is_checkpoint_error(self, tmp_path):
        path = tmp_path / "garbage.json"
        path.write_text("{not json")
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_wrong_kind_rejected(self, tmp_path):
        path = tmp_path / "other.json"
        path.write_text(json.dumps({"kind": "something-else"}))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_version_check(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(self._checkpoint(), path)
        data = json.loads(path.read_text())
        assert data["format_version"] == CHECKPOINT_VERSION
        data["format_version"] = 99
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_atomic_write_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(self._checkpoint(), path)
        save_checkpoint(self._checkpoint(), path)  # overwrite in place
        assert [p.name for p in tmp_path.iterdir()] == ["run.ckpt.json"]


class TestCheckpointV2:
    def _checkpoint_with_ledger(self):
        from repro.crowd import AnswerLedger, WorkerReliability

        ledger = AnswerLedger(domain_sizes=[6, 4])
        ledger.observe(var_greater_var(0, 1, 0), Relation.GREATER)
        ledger.observe(
            var_greater_var(0, 1, 0), Relation.LESS, strict=True, task_id=9
        )
        reliability = WorkerReliability(prior=(4.0, 1.0))
        reliability.observe(1, True)
        reliability.observe(-1, False)
        return QueryCheckpoint(
            fingerprint={"dataset": "nba", "seed": 3},
            budget_left=5,
            answer_log=[(var_greater_var(0, 1, 0), Relation.GREATER)],
            ledger_state=ledger.state_dict(),
            reliability_state=reliability.state_dict(),
        )

    def test_v2_round_trips_ledger_and_reliability(self, tmp_path):
        from repro.crowd import AnswerLedger, WorkerReliability

        path = tmp_path / "run.ckpt.json"
        save_checkpoint(self._checkpoint_with_ledger(), path)
        loaded = load_checkpoint(path)
        assert json.loads(path.read_text())["format_version"] == CHECKPOINT_VERSION

        restored = AnswerLedger(domain_sizes=[6, 4])
        restored.load_state_dict(loaded.ledger_state)
        assert restored.answers_aggregated == 2
        assert restored.answers_quarantined == 1

        reliability = WorkerReliability.from_state_dict(loaded.reliability_state)
        assert reliability.accuracy(1) > reliability.accuracy(-1)

    def test_v1_checkpoint_still_loads(self, tmp_path):
        """A checkpoint written before the ledger existed resumes with an
        empty ledger and prior reliability (both fields None)."""
        path = tmp_path / "old.ckpt.json"
        payload = {
            "format_version": 1,
            "kind": "bayescrowd-checkpoint",
            "fingerprint": {"dataset": "nba", "seed": 3},
            "budget_left": 4,
            "answer_log": [
                [expression_to_json(var_greater_const(0, 1, 2)),
                 Relation.GREATER.value],
            ],
            "pending": [],
            "history": [],
            "fault_totals": {},
            "degraded": False,
            "rng_state": None,
            "platform_state": None,
        }
        path.write_text(json.dumps(payload))
        loaded = load_checkpoint(path)
        assert loaded.budget_left == 4
        assert loaded.answer_log == [(var_greater_const(0, 1, 2), Relation.GREATER)]
        assert loaded.ledger_state is None
        assert loaded.reliability_state is None

    def test_v3_round_trips_task_identity_and_journal_seq(self, tmp_path):
        """v3 additions: 4-tuple pending (task id + re-ask lineage), the
        journal sequence the checkpoint covers, and the session's
        task-id allocator snapshot."""
        checkpoint = QueryCheckpoint(
            fingerprint={"dataset": "nba", "seed": 3},
            budget_left=5,
            answer_log=[],
            pending=[
                (var_greater_const(1, 1, 3), 1, 9, None),
                (var_greater_var(0, 2, 1), 2, 11, 7),
            ],
            journal_seq=17,
            task_ids_state={"next_id": 12},
        )
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded.pending == [
            (var_greater_const(1, 1, 3), 1, 9, None),
            (var_greater_var(0, 2, 1), 2, 11, 7),
        ]
        assert loaded.journal_seq == 17
        assert loaded.task_ids_state == {"next_id": 12}

    def test_v2_pending_pairs_stay_pairs(self, tmp_path):
        """Arity preservation: a checkpoint whose pending entries are
        legacy 2-tuples round-trips them as 2-tuples, not padded."""
        checkpoint = QueryCheckpoint(
            fingerprint={"dataset": "nba", "seed": 3},
            budget_left=5,
            answer_log=[],
            pending=[(var_greater_const(1, 1, 3), 1)],
        )
        path = tmp_path / "run.ckpt.json"
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded.pending == [(var_greater_const(1, 1, 3), 1)]
        assert loaded.journal_seq is None
        assert loaded.task_ids_state is None

    def test_run_resumes_from_v1_checkpoint(self, tmp_path):
        """End-to-end: checkpoint a run, strip the v2 fields to mimic a
        v1 file, and resume -- the run completes with an empty ledger."""
        dataset = generate_nba(n_objects=30, missing_rate=0.4, seed=3)
        config = BayesCrowdConfig(
            budget=30, latency=5, worker_accuracy=0.95, alpha=0.1, seed=3
        )
        path = tmp_path / "run.ckpt.json"
        BayesCrowd(dataset, config).run(checkpoint_path=path)

        data = json.loads(path.read_text())
        data["format_version"] = 1
        data.pop("ledger_state", None)
        data.pop("reliability_state", None)
        path.write_text(json.dumps(data))

        result = BayesCrowd(dataset, config).run(
            checkpoint_path=path, resume=True
        )
        assert result.resumed
        counters = result.metrics["counters"]
        assert (
            counters["answers_quarantined"] + counters["answers_applied"]
            == counters["answers_aggregated"]
        )


class TestCheckpointVersionMatrix:
    """Every supported on-disk version loads under the current reader,
    and a mid-run file of each vintage resumes to completion.

    The downgrade helper strips exactly the fields each older writer
    did not know about, so the files match what v1/v2 processes really
    produced.  (The v3 round-trip across a *server* restart is covered
    by the service suite's drain/recovery test.)
    """

    @staticmethod
    def _downgrade(data, version):
        data = dict(data)
        if version <= 2:
            data.pop("journal_seq", None)
            data.pop("task_ids_state", None)
            data["pending"] = [entry[:2] for entry in data.get("pending", [])]
        if version <= 1:
            data.pop("ledger_state", None)
            data.pop("reliability_state", None)
        data["format_version"] = version
        return data

    def _mid_run_file(self, tmp_path, version):
        """Checkpoint a real run, then rewrite it as the older vintage."""
        dataset = generate_nba(n_objects=30, missing_rate=0.4, seed=3)
        config = BayesCrowdConfig(
            budget=30, latency=5, worker_accuracy=0.9, alpha=0.1, seed=3
        )
        path = tmp_path / "run.ckpt.json"
        BayesCrowd(dataset, config).run(checkpoint_path=path)
        data = self._downgrade(json.loads(path.read_text()), version)
        path.write_text(json.dumps(data))
        return dataset, config, path

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_loads_under_current_reader(self, tmp_path, version):
        dataset, config, path = self._mid_run_file(tmp_path, version)
        loaded = load_checkpoint(path)
        assert loaded.budget_left >= 0
        if version <= 2:
            assert loaded.journal_seq is None
            assert loaded.task_ids_state is None
        if version <= 1:
            assert loaded.ledger_state is None
            assert loaded.reliability_state is None

    @pytest.mark.parametrize("version", [1, 2, 3])
    def test_resumes_to_completion(self, tmp_path, version):
        dataset, config, path = self._mid_run_file(tmp_path, version)
        result = BayesCrowd(dataset, config).run(
            checkpoint_path=path, resume=True
        )
        assert result.resumed
        assert result.answers

    def test_future_version_still_rejected(self, tmp_path):
        dataset, config, path = self._mid_run_file(tmp_path, 3)
        data = json.loads(path.read_text())
        data["format_version"] = CHECKPOINT_VERSION + 1
        path.write_text(json.dumps(data))
        with pytest.raises(CheckpointError):
            load_checkpoint(path)
