"""Tests for dominator-set derivation (Definition 5 / Eq. 1)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ctable import dominator_sets, dominator_sets_baseline, dominator_sets_fast
from repro.datasets import MISSING, IncompleteDataset, from_complete, mcar_mask


def dataset_from_rows(rows, domain=6):
    values = np.array(rows)
    return IncompleteDataset(values=values, domain_sizes=[domain] * values.shape[1])


class TestPaperExample:
    def test_table4_dominator_sets(self, movies):
        # Table 4: D(o1)={o5}, D(o2)=D(o3)=empty, D(o4)={o2,o5}, D(o5)={o1,o2}.
        sets = dominator_sets(movies)
        assert sets[0].tolist() == [4]
        assert sets[1].tolist() == []
        assert sets[2].tolist() == []
        assert sets[3].tolist() == [1, 4]
        assert sets[4].tolist() == [0, 1]

    def test_baseline_matches_on_paper_example(self, movies):
        fast = dominator_sets_fast(movies)
        slow = dominator_sets_baseline(movies)
        for a, b in zip(fast, slow):
            assert a.tolist() == b.tolist()


class TestDefinition:
    def test_ties_included(self):
        # Equal observed values keep an object in the dominator set.
        ds = dataset_from_rows([[2, 2], [2, 2]])
        sets = dominator_sets(ds)
        assert sets[0].tolist() == [1]
        assert sets[1].tolist() == [0]

    def test_worse_object_excluded(self):
        ds = dataset_from_rows([[2, 2], [1, 3]])
        sets = dominator_sets(ds)
        # o2 is worse than o1 on a1, so it cannot dominate o1.
        assert sets[0].tolist() == []
        assert sets[1].tolist() == []

    def test_missing_in_candidate_keeps_it(self):
        ds = dataset_from_rows([[2, 2], [MISSING, 3]])
        sets = dominator_sets(ds)
        assert sets[0].tolist() == [1]

    def test_missing_in_target_removes_constraint(self):
        # o1 misses a1, so every object passes the a1 filter for o1.
        ds = dataset_from_rows([[MISSING, 2], [0, 3]])
        sets = dominator_sets(ds)
        assert sets[0].tolist() == [1]

    def test_fully_missing_object_has_all_dominators(self):
        ds = dataset_from_rows([[MISSING, MISSING], [0, 0], [1, 1]])
        sets = dominator_sets(ds)
        assert sets[0].tolist() == [1, 2]

    def test_never_contains_self(self, nba_small):
        for o, members in enumerate(dominator_sets(nba_small)):
            assert o not in members.tolist()

    def test_unknown_method_rejected(self, movies):
        with pytest.raises(ValueError):
            dominator_sets(movies, method="magic")


class TestFastMatchesBaseline:
    @given(st.integers(0, 1_000_000))
    @settings(max_examples=25, deadline=None)
    def test_random_datasets_agree(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 25))
        d = int(rng.integers(1, 5))
        complete = rng.integers(0, 4, size=(n, d))
        mask = mcar_mask(n, d, float(rng.uniform(0, 0.4)), rng)
        ds = from_complete(complete, mask, [4] * d)
        fast = dominator_sets_fast(ds)
        slow = dominator_sets_baseline(ds)
        for a, b in zip(fast, slow):
            assert a.tolist() == b.tolist()

    def test_agree_on_nba(self, nba_small):
        fast = dominator_sets_fast(nba_small)
        slow = dominator_sets_baseline(nba_small)
        for a, b in zip(fast, slow):
            assert a.tolist() == b.tolist()


class TestSoundness:
    def test_dominator_set_covers_true_dominators(self, nba_small):
        """Any object that truly dominates o (on ground truth) must be in D(o)."""
        sets = dominator_sets(nba_small)
        complete = nba_small.complete
        for o in range(nba_small.n_objects):
            members = set(sets[o].tolist())
            for p in range(nba_small.n_objects):
                if p == o:
                    continue
                truly_dominates = (complete[p] >= complete[o]).all() and (
                    complete[p] > complete[o]
                ).any()
                if truly_dominates:
                    assert p in members, (
                        "true dominator %d of %d missing from D(o)" % (p, o)
                    )
