"""Tests for the CrowdSky baseline reimplementation."""

import pytest

from repro.baselines import CrowdSky
from repro.datasets import attribute_mask, from_complete, generate_nba
from repro.skyline import skyline


def crowd_attr_dataset(n=80, crowd_attrs=(2, 4), seed=1):
    """NBA data with the given attributes fully missing (CrowdSky setting)."""
    base = generate_nba(n_objects=n, missing_rate=0.0, seed=seed)
    mask = attribute_mask(base.n_objects, base.n_attributes, list(crowd_attrs))
    return from_complete(
        base.complete,
        mask,
        base.domain_sizes,
        name="nba-crowd",
        attribute_names=base.attribute_names,
    )


class TestSetting:
    def test_rejects_scattered_missing(self):
        ds = generate_nba(n_objects=30, missing_rate=0.1, seed=0)
        with pytest.raises(ValueError):
            CrowdSky(ds)

    def test_rejects_fully_observed(self):
        ds = generate_nba(n_objects=30, missing_rate=0.0, seed=0)
        with pytest.raises(ValueError):
            CrowdSky(ds)

    def test_attribute_split_detected(self):
        ds = crowd_attr_dataset()
        cs = CrowdSky(ds)
        assert cs.crowd_attrs == [2, 4]
        assert len(cs.observed_attrs) == 9

    def test_rejects_bad_batch_size(self):
        with pytest.raises(ValueError):
            CrowdSky(crowd_attr_dataset(), tasks_per_round=0)


class TestCorrectness:
    def test_perfect_workers_recover_exact_skyline(self):
        ds = crowd_attr_dataset(n=100)
        result = CrowdSky(ds, seed=0).run()
        assert result.answers == skyline(ds.complete)

    def test_multiple_crowd_attributes(self):
        ds = crowd_attr_dataset(n=60, crowd_attrs=(0, 5, 9))
        result = CrowdSky(ds, seed=0).run()
        assert result.answers == skyline(ds.complete)

    def test_single_crowd_attribute(self):
        ds = crowd_attr_dataset(n=60, crowd_attrs=(3,))
        result = CrowdSky(ds, seed=0).run()
        assert result.answers == skyline(ds.complete)


class TestAccounting:
    def test_batches_respect_round_size(self):
        ds = crowd_attr_dataset(n=100)
        result = CrowdSky(ds, tasks_per_round=20, seed=0).run()
        assert all(record.tasks_posted <= 20 for record in result.history)
        assert result.rounds == len(result.history)

    def test_no_duplicate_questions(self):
        ds = crowd_attr_dataset(n=100)
        cs = CrowdSky(ds, seed=0)
        result = cs.run()
        # Every answered comparison is stored once; tasks == knowledge size.
        assert result.tasks_posted == len(cs._known)

    def test_far_more_tasks_than_bayescrowd_budget(self):
        """The Figure 4 shape: CrowdSky posts many more tasks than a
        BayesCrowd budget on the same data (order of magnitude in paper)."""
        from repro import BayesCrowd, BayesCrowdConfig, f1_score

        ds = crowd_attr_dataset(n=120)
        crowdsky_result = CrowdSky(ds, seed=0).run()
        config = BayesCrowdConfig(alpha=0.05, budget=200, latency=10)
        bayescrowd_result = BayesCrowd(ds, config).run()
        assert crowdsky_result.tasks_posted > 2 * bayescrowd_result.tasks_posted
        assert crowdsky_result.rounds > bayescrowd_result.rounds
        truth = skyline(ds.complete)
        assert f1_score(crowdsky_result.answers, truth) == 1.0
        assert f1_score(bayescrowd_result.answers, truth) >= 0.9


class TestNoisyWorkers:
    def test_noisy_workers_still_mostly_correct(self):
        ds = crowd_attr_dataset(n=60)
        result = CrowdSky(ds, worker_accuracy=0.9, seed=0).run()
        truth = set(skyline(ds.complete))
        from repro.metrics import f1_score

        assert f1_score(result.answers, truth) > 0.8


class TestImputationBaseline:
    def test_map_imputation_fills_everything(self):
        from repro.baselines import impute_dataset
        from repro.datasets import generate_nba

        nba = generate_nba(n_objects=80, missing_rate=0.15, seed=3)
        filled = impute_dataset(nba, mode="map")
        assert (filled >= 0).all()
        # Observed cells untouched.
        observed = ~nba.mask
        assert (filled[observed] == nba.values[observed]).all()

    def test_modes_differ_and_validate(self):
        import pytest
        from repro.baselines import impute_dataset
        from repro.datasets import generate_nba

        nba = generate_nba(n_objects=60, missing_rate=0.15, seed=3)
        for mode in ("map", "mean", "sample"):
            filled = impute_dataset(nba, mode=mode)
            assert filled.shape == nba.values.shape
        with pytest.raises(ValueError):
            impute_dataset(nba, mode="magic")

    def test_crowd_beats_imputation(self):
        """The point of the whole paper: crowdsourcing should beat
        impute-then-query on answer accuracy (given a sane budget)."""
        from repro import BayesCrowd, BayesCrowdConfig, f1_score, skyline
        from repro.baselines import imputed_skyline
        from repro.datasets import generate_nba

        nba = generate_nba(n_objects=200, missing_rate=0.15, seed=8)
        truth = skyline(nba.complete)
        imputed = imputed_skyline(nba)
        config = BayesCrowdConfig(alpha=0.05, budget=80, latency=8, seed=1)
        crowd = BayesCrowd(nba, config).run()
        assert f1_score(crowd.answers, truth) > f1_score(imputed.answers, truth)
        assert imputed.tasks_posted == 0
