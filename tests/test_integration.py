"""Cross-module integration tests on generated datasets."""

import numpy as np
import pytest

from repro import (
    BayesCrowd,
    BayesCrowdConfig,
    f1_score,
    generate_nba,
    generate_synthetic,
    skyline,
)
from repro.baselines import machine_only_skyline
from repro.crowd import SimulatedCrowdPlatform, WorkerPool


class TestMachineOnlyBaseline:
    def test_no_tasks_posted(self, nba_small):
        result = machine_only_skyline(nba_small, BayesCrowdConfig(alpha=0.05))
        assert result.tasks_posted == 0
        assert result.rounds == 0

    def test_crowd_beats_machine_only(self):
        nba = generate_nba(n_objects=250, missing_rate=0.15, seed=9)
        truth = skyline(nba.complete)
        config = BayesCrowdConfig(alpha=0.05, budget=80, latency=8)
        machine = machine_only_skyline(nba, config)
        crowd = BayesCrowd(nba, config).run()
        assert f1_score(crowd.answers, truth) >= f1_score(machine.answers, truth)


class TestWorkerAccuracyEffect:
    def test_accuracy_monotone_in_worker_quality(self):
        """Figure 9 shape: lower worker accuracy -> lower (or equal) F1."""
        nba = generate_nba(n_objects=200, missing_rate=0.1, seed=12)
        truth = skyline(nba.complete)
        scores = []
        for accuracy in (0.6, 1.0):
            config = BayesCrowdConfig(
                alpha=0.05, budget=60, latency=6, worker_accuracy=accuracy, seed=3
            )
            result = BayesCrowd(nba, config).run()
            scores.append(f1_score(result.answers, truth))
        assert scores[0] <= scores[1]

    def test_heterogeneous_pool(self):
        nba = generate_nba(n_objects=120, missing_rate=0.1, seed=12)
        pool = WorkerPool(
            [0.7, 0.8, 0.9, 0.95, 1.0] * 4, rng=np.random.default_rng(0)
        )
        platform = SimulatedCrowdPlatform(nba, worker_pool=pool, rng=np.random.default_rng(1))
        config = BayesCrowdConfig(alpha=0.05, budget=30, latency=3)
        result = BayesCrowd(nba, config, platform=platform).run()
        assert result.tasks_posted <= 30


class TestBudgetEffect:
    def test_f1_non_decreasing_in_budget(self):
        """Figure 5 shape: more budget -> weakly better accuracy."""
        nba = generate_nba(n_objects=200, missing_rate=0.15, seed=21)
        truth = skyline(nba.complete)
        scores = []
        for budget in (0, 30, 120):
            config = BayesCrowdConfig(
                alpha=0.05, budget=budget, latency=5, strategy="hhs", seed=2
            )
            result = BayesCrowd(nba, config).run()
            scores.append(f1_score(result.answers, truth))
        assert scores == sorted(scores)


class TestProbabilityMethodsAgreeEndToEnd:
    def test_adpll_and_naive_same_answers(self):
        # Naive enumerates the full assignment space, so this runs on the
        # small movie example where conditions have at most four variables.
        from repro.datasets import example_distributions, sample_dataset

        results = []
        for method in ("adpll", "naive"):
            config = BayesCrowdConfig(
                alpha=1.0,
                budget=4,
                latency=2,
                probability_method=method,
                distribution_source="uniform",
                seed=5,
            )
            bc = BayesCrowd(
                sample_dataset(), config, distributions=example_distributions()
            )
            results.append(bc.run().answers)
        assert results[0] == results[1]


class TestSyntheticEndToEnd:
    def test_full_pipeline(self, synthetic_small):
        config = BayesCrowdConfig(alpha=0.1, budget=40, latency=4, seed=1)
        result = BayesCrowd(synthetic_small, config).run()
        truth = skyline(synthetic_small.complete)
        assert f1_score(result.answers, truth) > 0.7
        assert result.rounds <= 4

    def test_utility_mode_ablation_runs(self, synthetic_small):
        for mode in ("syntactic", "conditional"):
            config = BayesCrowdConfig(
                alpha=0.1, budget=20, latency=2, utility_mode=mode, seed=1
            )
            result = BayesCrowd(synthetic_small, config).run()
            assert result.tasks_posted <= 20


class TestPerfectCrowdConvergence:
    def test_answering_everything_recovers_exact_skyline(self):
        """With no pruning, a perfect crowd and budget for every expression,
        the answer set must equal the complete-data skyline exactly.

        This is the end-to-end soundness property of the whole pipeline:
        c-table construction + answer propagation + result inference.
        """
        nba = generate_nba(n_objects=150, missing_rate=0.15, seed=33)
        truth = skyline(nba.complete)
        config = BayesCrowdConfig(
            alpha=1.0,             # no pruning
            budget=100_000,        # effectively unbounded
            latency=10_000,
            strategy="fbs",
            worker_accuracy=1.0,
            seed=0,
        )
        result = BayesCrowd(nba, config).run()
        assert result.answers == truth
        assert result.f1(truth) == 1.0

    def test_convergence_on_synthetic(self):
        synthetic = generate_synthetic(n_objects=150, missing_rate=0.15, seed=34)
        truth = skyline(synthetic.complete)
        config = BayesCrowdConfig(
            alpha=1.0, budget=100_000, latency=10_000, strategy="fbs", seed=0
        )
        result = BayesCrowd(synthetic, config).run()
        # Small-domain synthetic data can contain exact duplicate rows whose
        # clauses read as domination (documented all-equal-tie caveat);
        # everything else must be exact.
        missed = set(truth) - set(result.answers)
        for obj in missed:
            duplicates = (synthetic.complete == synthetic.complete[obj]).all(
                axis=1
            ).sum()
            assert duplicates > 1
        assert not set(result.answers) - set(truth)


class TestRandomDatasetConvergence:
    """Hypothesis: perfect crowd + no pruning recovers the exact skyline on
    arbitrary random incomplete datasets (modulo duplicate-row ties)."""

    from hypothesis import given, settings
    from hypothesis import strategies as st

    @given(st.integers(0, 10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_tiny_datasets(self, seed):
        import numpy as np

        from repro.datasets import from_complete, mcar_mask

        rng = np.random.default_rng(seed)
        n = int(rng.integers(3, 12))
        d = int(rng.integers(2, 4))
        domain = int(rng.integers(3, 6))
        complete = rng.integers(0, domain, size=(n, d))
        mask = mcar_mask(n, d, float(rng.uniform(0.0, 0.35)), rng)
        dataset = from_complete(complete, mask, [domain] * d)

        config = BayesCrowdConfig(
            alpha=1.0,
            budget=10_000,
            latency=10_000,
            strategy="fbs",
            distribution_source="uniform",
            seed=0,
        )
        result = BayesCrowd(dataset, config).run()
        truth = set(skyline(complete))
        answers = set(result.answers)
        # No false positives ever.
        assert answers <= truth
        # False negatives only through exact duplicate rows.
        for obj in truth - answers:
            duplicates = (complete == complete[obj]).all(axis=1).sum()
            assert duplicates > 1


class TestConfigurationGrid:
    """Every sensible configuration combination must run end to end."""

    @pytest.mark.parametrize("strategy", ["fbs", "ubs", "hhs"])
    @pytest.mark.parametrize("inference_mode", ["direct", "intervals", "full"])
    def test_strategy_x_inference_grid(self, strategy, inference_mode):
        nba = generate_nba(n_objects=80, missing_rate=0.1, seed=19)
        config = BayesCrowdConfig(
            alpha=0.1,
            budget=8,
            latency=2,
            strategy=strategy,
            inference_mode=inference_mode,
            seed=0,
        )
        result = BayesCrowd(nba, config).run()
        assert result.tasks_posted <= 8
        assert result.rounds <= 2
        truth = skyline(nba.complete)
        assert f1_score(result.answers, truth) > 0.5

    @pytest.mark.parametrize("source", ["bayesnet", "empirical", "uniform"])
    def test_distribution_sources_grid(self, source):
        nba = generate_nba(n_objects=80, missing_rate=0.1, seed=19)
        config = BayesCrowdConfig(
            alpha=0.1, budget=6, latency=2, distribution_source=source, seed=0
        )
        result = BayesCrowd(nba, config).run()
        assert result.tasks_posted <= 6

    def test_approx_probability_method_end_to_end(self):
        nba = generate_nba(n_objects=60, missing_rate=0.1, seed=19)
        config = BayesCrowdConfig(
            alpha=0.1, budget=6, latency=2, probability_method="approx", seed=0
        )
        result = BayesCrowd(nba, config).run()
        truth = skyline(nba.complete)
        # Sampling noise tolerated; the pipeline must still be sane.
        assert f1_score(result.answers, truth) > 0.5
