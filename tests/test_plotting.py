"""Tests for the ASCII chart renderer."""

import pytest

from repro.experiments.plotting import ascii_line_chart, chart_from_rows


class TestAsciiLineChart:
    def test_empty(self):
        assert ascii_line_chart({}) == "(no data to plot)"
        assert ascii_line_chart({"a": []}) == "(no data to plot)"

    def test_contains_markers_and_legend(self):
        chart = ascii_line_chart(
            {"alpha": [(0, 0), (1, 1)], "beta": [(0, 1), (1, 0)]},
            title="demo",
        )
        assert "demo" in chart
        assert "o alpha" in chart
        assert "x beta" in chart
        assert chart.count("o") >= 2

    def test_extremes_at_corners(self):
        chart = ascii_line_chart({"s": [(0.0, 0.0), (10.0, 5.0)]}, width=20, height=6)
        lines = chart.splitlines()
        plot_rows = [l for l in lines if "|" in l]
        # min y at the bottom row, max y at the top row
        assert "o" in plot_rows[0].split("|")[1]
        assert "o" in plot_rows[-1].split("|")[1]
        top_marker_col = plot_rows[0].split("|")[1].index("o")
        bottom_marker_col = plot_rows[-1].split("|")[1].index("o")
        assert bottom_marker_col == 0
        assert top_marker_col == 19

    def test_axis_labels(self):
        chart = ascii_line_chart(
            {"s": [(1, 2), (3, 4)]}, x_label="budget", y_label="f1"
        )
        assert "x: budget" in chart
        assert "y: f1" in chart

    def test_log_scale_annotated(self):
        chart = ascii_line_chart(
            {"s": [(1, 0.001), (2, 100.0)]}, y_label="time", log_y=True
        )
        assert "(log scale)" in chart

    def test_constant_series_no_crash(self):
        chart = ascii_line_chart({"s": [(1, 5), (2, 5)]})
        assert "o" in chart

    def test_size_validation(self):
        with pytest.raises(ValueError):
            ascii_line_chart({"s": [(0, 0)]}, width=2)


class TestChartFromRows:
    ROWS = [
        {"strategy": "fbs", "budget": 10, "f1": 0.8},
        {"strategy": "fbs", "budget": 20, "f1": 0.9},
        {"strategy": "ubs", "budget": 10, "f1": 0.85},
        {"strategy": "ubs", "budget": 20, "f1": "-"},  # non-numeric: skipped
    ]

    def test_groups_by_series_key(self):
        chart = chart_from_rows(self.ROWS, x="budget", y="f1", series_key="strategy")
        assert "fbs" in chart and "ubs" in chart

    def test_without_series_key(self):
        chart = chart_from_rows(self.ROWS, x="budget", y="f1")
        assert "all" in chart

    def test_all_rows_invalid(self):
        chart = chart_from_rows([{"a": "x"}], x="a", y="b")
        assert chart == "(no data to plot)"
