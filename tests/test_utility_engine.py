"""Tests for the batched utility scorer (gain parity, caching, counters)."""

import numpy as np
import pytest

from repro.core import (
    BayesCrowdConfig,
    UtilityEngine,
    marginal_utility,
    run_bayescrowd,
)
from repro.ctable import Condition, Relation, build_ctable, var_greater_const
from repro.datasets import MISSING, IncompleteDataset, generate_synthetic
from repro.probability import DistributionStore, ProbabilityEngine


def random_dataset(seed, n=40, d=3, domain=5, missing_rate=0.3):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, size=(n, d))
    values[rng.random((n, d)) < missing_rate] = MISSING
    return IncompleteDataset(values=values, domain_sizes=[domain] * d)


def scoring_fixture(seed=0, alpha=0.3):
    from repro.bayesnet.posteriors import uniform_distributions

    dataset = random_dataset(seed)
    ctable = build_ctable(dataset, alpha=alpha)
    store = DistributionStore(uniform_distributions(dataset), ctable.constraints)
    engine = ProbabilityEngine(store)
    pairs = [
        (ctable.condition(obj), expression)
        for obj in ctable.undecided()
        for expression in sorted(
            ctable.condition(obj).distinct_expressions(),
            key=lambda e: e.sort_key(),
        )
    ]
    # Objects can share identical conditions; keep each pair once so the
    # counter assertions below don't have to model duplicate servicing.
    return ctable, engine, list(dict.fromkeys(pairs))


class TestGainParity:
    @pytest.mark.parametrize("seed", range(3))
    @pytest.mark.parametrize("mode", ["syntactic", "conditional"])
    def test_matches_marginal_utility(self, seed, mode):
        __, engine, pairs = scoring_fixture(seed)
        scorer = UtilityEngine(engine, mode=mode)
        batched = scorer.gains(pairs)
        reference = ProbabilityEngine(engine.store)
        for (condition, expression), gain in zip(pairs, batched):
            assert gain == pytest.approx(
                marginal_utility(condition, expression, reference, mode=mode),
                abs=1e-12,
            )

    def test_empty_batch(self, movies_store):
        scorer = UtilityEngine(ProbabilityEngine(movies_store))
        assert scorer.gains([]) == []
        assert scorer.candidates_total == 0

    def test_rejects_unknown_mode(self, movies_store):
        with pytest.raises(ValueError):
            UtilityEngine(ProbabilityEngine(movies_store), mode="magic")


class TestCounters:
    def test_every_candidate_accounted_once(self):
        __, engine, pairs = scoring_fixture()
        scorer = UtilityEngine(engine)
        scorer.gains(pairs)
        assert scorer.candidates_total == len(pairs)
        assert (
            scorer.evals_total + scorer.cache_hits + scorer.skipped_total
            == scorer.candidates_total
        )
        assert scorer.probability_computed <= scorer.probability_submitted
        assert scorer.probability_submitted <= scorer.probability_requests

    def test_second_call_is_all_cache_hits(self):
        __, engine, pairs = scoring_fixture()
        scorer = UtilityEngine(engine)
        first = scorer.gains(pairs)
        evals = scorer.evals_total
        second = scorer.gains(pairs)
        assert second == first
        assert scorer.evals_total == evals
        assert scorer.cache_hits == len(pairs)

    def test_within_batch_duplicates_served_once(self):
        __, engine, pairs = scoring_fixture()
        doubled = pairs + pairs
        scorer = UtilityEngine(engine)
        gains = scorer.gains(doubled)
        assert gains[: len(pairs)] == gains[len(pairs) :]
        assert scorer.evals_total + scorer.skipped_total == len(pairs)
        assert scorer.cache_hits == len(pairs)

    def test_certain_condition_skipped_without_residual_work(self):
        engine = ProbabilityEngine(
            DistributionStore({(0, 0): np.array([0.0, 1.0])})
        )
        certain = var_greater_const(0, 0, 0)  # Pr = 1 under the pmf above
        scorer = UtilityEngine(engine)
        (gain,) = scorer.gains([(Condition.of([[certain]]), certain)])
        assert gain == 0.0
        assert scorer.skipped_total == 1
        assert scorer.evals_total == 0

    def test_stats_schema(self):
        __, engine, pairs = scoring_fixture()
        scorer = UtilityEngine(engine)
        scorer.gains(pairs)
        stats = scorer.stats()
        assert stats["utility_evals_total"] == (
            stats["utility_candidates_total"]
            - stats["residual_cache_hits"]
            - stats["utility_skipped_total"]
        )
        assert 0.0 <= stats["utility_batch_dedup_ratio"] <= 1.0
        assert stats["utility_batch_seconds"] >= 0.0


class TestInvalidation:
    def test_answers_invalidate_only_touched_pairs(self):
        ctable, engine, pairs = scoring_fixture()
        scorer = UtilityEngine(engine)
        scorer.gains(pairs)
        answered = pairs[0][1]
        ctable.apply_answer(answered, Relation.GREATER)
        touched = {
            pair
            for pair in pairs
            if set(answered.variables()) & UtilityEngine._pair_variables(pair)
        }
        assert touched  # the answer must intersect some pair
        evals_before = scorer.evals_total
        hits_before = scorer.cache_hits
        skipped_before = scorer.skipped_total
        scorer.gains(pairs)
        fresh = (
            scorer.evals_total - evals_before
            + scorer.skipped_total - skipped_before
        )
        # Pairs with no variable in common with the answer revalidate.
        assert scorer.cache_hits - hits_before == len(pairs) - len(touched)
        assert fresh == len(touched)

    def test_recomputed_gains_match_scalar_after_update(self):
        ctable, engine, pairs = scoring_fixture()
        scorer = UtilityEngine(engine)
        scorer.gains(pairs)
        ctable.apply_answer(pairs[0][1], Relation.GREATER)
        after = scorer.gains(pairs)
        reference = ProbabilityEngine(engine.store)
        for (condition, expression), gain in zip(pairs, after):
            assert gain == pytest.approx(
                marginal_utility(condition, expression, reference), abs=1e-12
            )


class TestEndToEndParity:
    """Batched and scalar selection pick identical tasks round by round."""

    @pytest.mark.parametrize("strategy", ["ubs", "hhs"])
    @pytest.mark.parametrize("seed", [0, 1])
    def test_identical_rounds_and_answers(self, strategy, seed):
        dataset = generate_synthetic(n_objects=90, missing_rate=0.15, seed=seed + 20)
        results = {}
        for batched in (True, False):
            config = BayesCrowdConfig(
                budget=18,
                latency=6,
                strategy=strategy,
                alpha=0.1,
                m=4,
                selection_batch=batched,
                seed=seed,
            )
            results[batched] = run_bayescrowd(dataset, config)
        batched, scalar = results[True], results[False]
        assert len(batched.history) == len(scalar.history)
        for round_b, round_s in zip(batched.history, scalar.history):
            assert round_b.objects == round_s.objects
        assert set(batched.answers) == set(scalar.answers)
        assert set(batched.certain_answers) == set(scalar.certain_answers)

    def test_batched_run_exports_selection_counters(self):
        dataset = generate_synthetic(n_objects=60, missing_rate=0.15, seed=31)
        config = BayesCrowdConfig(
            budget=10, latency=5, strategy="hhs", alpha=0.1, seed=0
        )
        stats = run_bayescrowd(dataset, config).engine_stats
        assert stats["utility_evals_total"] == (
            stats["utility_candidates_total"]
            - stats["residual_cache_hits"]
            - stats["utility_skipped_total"]
        )
        assert stats["selection_seconds"] >= 0.0
