"""Property tests: the vectorized/parallel hot paths match the scalar ones.

The numpy c-table backend, the batched probability API and the bulk
expression-probability gather are pure optimizations -- on any dataset
they must produce byte-identical conditions and probabilities within
1e-12 of the scalar reference implementations.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesnet.posteriors import empirical_distributions, uniform_distributions
from repro.ctable import (
    build_ctable,
    dominator_sets_baseline,
    dominator_sets_numpy,
    pruned_dominator_scan,
)
from repro.datasets import MISSING, IncompleteDataset
from repro.lru import LRUCache
from repro.parallel import PoolDecision
from repro.probability import DistributionStore, ProbabilityEngine


def random_dataset(seed, n=40, d=3, domain=5, missing_rate=0.3):
    rng = np.random.default_rng(seed)
    values = rng.integers(0, domain, size=(n, d))
    values[rng.random((n, d)) < missing_rate] = MISSING
    return IncompleteDataset(values=values, domain_sizes=[domain] * d)


@st.composite
def incomplete_datasets(draw):
    n = draw(st.integers(min_value=1, max_value=14))
    d = draw(st.integers(min_value=1, max_value=3))
    domain = draw(st.integers(min_value=2, max_value=5))
    cells = draw(
        st.lists(
            st.integers(min_value=-1, max_value=domain - 1),
            min_size=n * d,
            max_size=n * d,
        )
    )
    values = np.array(cells).reshape(n, d)
    return IncompleteDataset(values=values, domain_sizes=[domain] * d)


class TestBackendParity:
    @settings(max_examples=60, deadline=None)
    @given(incomplete_datasets(), st.sampled_from([0.05, 0.3, 1.0]))
    def test_numpy_backend_matches_python(self, dataset, alpha):
        fast = build_ctable(dataset, alpha=alpha, backend="python")
        vector = build_ctable(dataset, alpha=alpha, backend="numpy")
        assert fast.conditions == vector.conditions

    @settings(max_examples=40, deadline=None)
    @given(incomplete_datasets())
    def test_numpy_dominators_match_baseline(self, dataset):
        for a, b in zip(dominator_sets_numpy(dataset), dominator_sets_baseline(dataset)):
            assert a.tolist() == b.tolist()

    @pytest.mark.parametrize("seed", range(5))
    @pytest.mark.parametrize("alpha", [0.1, 1.0])
    def test_parity_on_larger_random_datasets(self, seed, alpha):
        dataset = random_dataset(seed, n=60, d=4)
        fast = build_ctable(dataset, alpha=alpha, backend="python")
        vector = build_ctable(dataset, alpha=alpha, backend="numpy")
        assert fast.conditions == vector.conditions

    def test_all_missing_dataset(self):
        values = np.full((6, 3), MISSING)
        dataset = IncompleteDataset(values=values, domain_sizes=[4, 4, 4])
        fast = build_ctable(dataset, alpha=1.0, backend="python")
        vector = build_ctable(dataset, alpha=1.0, backend="numpy")
        assert fast.conditions == vector.conditions
        # every pair is mutually a possible dominator
        assert all(not c.is_constant for c in vector.conditions.values())

    def test_no_missing_dataset(self):
        rng = np.random.default_rng(3)
        values = rng.integers(0, 5, size=(30, 3))
        dataset = IncompleteDataset(values=values, domain_sizes=[5, 5, 5])
        fast = build_ctable(dataset, alpha=1.0, backend="python")
        vector = build_ctable(dataset, alpha=1.0, backend="numpy")
        assert fast.conditions == vector.conditions
        # complete data decides everything without the crowd
        assert all(c.is_constant for c in vector.conditions.values())

    def test_single_object(self):
        dataset = IncompleteDataset(
            values=np.array([[MISSING, 2]]), domain_sizes=[3, 3]
        )
        vector = build_ctable(dataset, alpha=1.0, backend="numpy")
        assert vector.condition(0).is_true

    def test_auto_backend_resolution(self):
        dataset = random_dataset(0)
        assert build_ctable(dataset).build_stats["backend"] == "numpy"
        assert (
            build_ctable(dataset, dominator_method="baseline").build_stats["backend"]
            == "python"
        )


class TestPruningParity:
    """The dominance-pruning pre-pass is a pure optimization.

    On any dataset, any alpha and either emission backend the pruned
    build must produce the identical c-table -- same conditions, same
    alpha-pruned set -- while its pair accounting covers the full
    ordered-pair universe.
    """

    @settings(max_examples=60, deadline=None)
    @given(
        incomplete_datasets(),
        st.sampled_from([0.02, 0.05, 0.3, 1.0]),
        st.sampled_from(["python", "numpy"]),
    )
    def test_pruned_build_matches_unpruned(self, dataset, alpha, backend):
        plain = build_ctable(dataset, alpha=alpha, backend=backend, prune="off")
        pruned = build_ctable(dataset, alpha=alpha, backend=backend, prune="on")
        assert pruned.conditions == plain.conditions
        assert pruned.pruned == plain.pruned
        stats = pruned.build_stats
        n = dataset.n_objects
        assert stats["prune_enabled"]
        assert stats["pairs_tested"] + stats["pairs_pruned"] == n * (n - 1)

    @pytest.mark.parametrize("seed", range(4))
    @pytest.mark.parametrize("missing_rate", [0.0, 0.2, 0.6])
    def test_parity_on_larger_random_datasets(self, seed, missing_rate):
        dataset = random_dataset(seed, n=70, d=4, missing_rate=missing_rate)
        for alpha in (0.05, 0.3):
            plain = build_ctable(dataset, alpha=alpha, prune="off")
            pruned = build_ctable(dataset, alpha=alpha, prune="on")
            assert pruned.conditions == plain.conditions
            assert pruned.pruned == plain.pruned

    def test_unpruned_stats_cover_the_universe_too(self):
        dataset = random_dataset(5, n=30)
        stats = build_ctable(dataset, alpha=0.2, prune="off").build_stats
        n = dataset.n_objects
        assert not stats["prune_enabled"]
        assert stats["pairs_pruned"] == 0
        assert stats["pairs_tested"] == stats["pair_universe"] == n * (n - 1)
        assert stats["builds"] == 1

    def test_auto_prunes_only_the_numpy_backend(self):
        dataset = random_dataset(6, n=25)
        auto = build_ctable(dataset, alpha=0.2, prune="auto")
        assert auto.build_stats["prune_enabled"]
        scalar = build_ctable(dataset, alpha=0.2, backend="python", prune="auto")
        assert not scalar.build_stats["prune_enabled"]

    def test_invalid_prune_mode_rejected(self):
        with pytest.raises(ValueError, match="prune"):
            build_ctable(random_dataset(0, n=5), prune="maybe")

    def test_sharded_scan_matches_sequential(self, monkeypatch):
        # Force the pool past decide_workers so the sharded path runs
        # even on single-core CI hosts.
        dataset = random_dataset(7, n=300, d=3, missing_rate=0.3)
        limit = 0.05 * dataset.n_objects
        sequential = pruned_dominator_scan(dataset, limit, n_jobs=1)
        monkeypatch.setattr(
            "repro.ctable.pruning.decide_workers",
            lambda *a, **k: PoolDecision(3, "parallel: forced by test"),
        )
        sharded = pruned_dominator_scan(dataset, limit, n_jobs=3)
        np.testing.assert_array_equal(
            sharded.dominator_counts, sequential.dominator_counts
        )
        assert set(sharded.open_sets) == set(sequential.open_sets)
        for o, objs in sequential.open_sets.items():
            np.testing.assert_array_equal(sharded.open_sets[o], objs)
        assert (
            sharded.stats["pairs_tested"] == sequential.stats["pairs_tested"]
        )
        assert sharded.stats["scan_workers"] == 3
        assert sharded.stats["blocks_sharded"] > 1

    def test_empty_dataset_scan(self):
        dataset = IncompleteDataset(
            values=np.zeros((0, 2), dtype=np.int64), domain_sizes=[3, 3]
        )
        scan = pruned_dominator_scan(dataset, 0.0)
        assert len(scan.dominator_counts) == 0
        assert scan.stats["pair_universe"] == 0


class TestProbabilityParity:
    def _engine_pair(self, seed, source=uniform_distributions, **kwargs):
        dataset = random_dataset(seed, n=50, d=3, missing_rate=0.35)
        ctable = build_ctable(dataset, alpha=0.2)
        store = DistributionStore(source(dataset), ctable.constraints)
        conditions = [ctable.condition(o) for o in sorted(ctable.conditions)]
        return conditions, store, kwargs

    @pytest.mark.parametrize("seed", range(4))
    def test_batch_matches_scalar(self, seed):
        conditions, store, __ = self._engine_pair(seed)
        scalar = ProbabilityEngine(store)
        batch = ProbabilityEngine(store.snapshot())
        expected = [scalar.probability(c) for c in conditions]
        actual = batch.probability_many(conditions)
        assert actual == pytest.approx(expected, abs=1e-12)

    def test_pool_matches_scalar(self):
        conditions, store, __ = self._engine_pair(1, source=empirical_distributions)
        symbolic = [c for c in conditions if not c.is_constant]
        # Pad with duplicates so the batch crosses the pool threshold.
        workload = (symbolic * 8)[:64] or conditions
        scalar = ProbabilityEngine(store)
        pooled = ProbabilityEngine(store.snapshot(), n_jobs=2)
        expected = [scalar.probability(c) for c in workload]
        actual = pooled.probability_many(workload)
        assert actual == pytest.approx(expected, abs=1e-12)

    def test_forced_shared_memory_pool_matches_scalar(self, monkeypatch):
        # decide_workers refuses a pool on single-core CI hosts; force it
        # so the publish/attach/compute path actually runs in workers.
        conditions, store, __ = self._engine_pair(2, source=empirical_distributions)
        workload = [c for c in conditions if not c.is_constant] or conditions
        scalar = ProbabilityEngine(store)
        expected = [scalar.probability(c) for c in workload]
        monkeypatch.setattr(
            "repro.probability.engine.decide_workers",
            lambda *a, **k: PoolDecision(2, "parallel: forced by test"),
        )
        pooled = ProbabilityEngine(store.snapshot(), n_jobs=2)
        actual = pooled.probability_many(workload)
        assert actual == pytest.approx(expected, abs=1e-12)
        stats = pooled.stats()
        assert stats["pool_workers"] == 2
        assert stats["pool_decision"] == "parallel: forced by test"
        assert stats["parallel_chunks"] >= 2
        assert len(pooled.parallel_worker_seconds) == stats["parallel_chunks"]

    def test_pool_fallback_decision_is_recorded(self):
        conditions, store, __ = self._engine_pair(0)
        engine = ProbabilityEngine(store, n_jobs=64)
        engine.probability_many(conditions)
        stats = engine.stats()
        # Whatever this host decides, the decision must be recorded and
        # oversubscription must never exceed the usable cores.
        assert stats["pool_decision"].startswith(("sequential:", "parallel:"))
        from repro.parallel import usable_cpu_count

        assert stats["pool_workers"] <= usable_cpu_count()

    def test_packed_snapshot_roundtrip(self):
        __, store, ___ = self._engine_pair(1, source=empirical_distributions)
        clone = DistributionStore.from_packed(
            {k: np.asarray(v) for k, v in store.pack_snapshot().items()}
        )
        for variable in store.variables():
            np.testing.assert_allclose(
                clone.pmf(variable), store.pmf(variable), atol=1e-15
            )

    def test_bulk_expressions_match_scalar(self):
        conditions, store, __ = self._engine_pair(2)
        leaves = set()
        for condition in conditions:
            leaves.update(condition.distinct_expressions())
        fresh = store.snapshot()
        bulk = fresh.prob_expressions_bulk(leaves)
        for expression in leaves:
            assert bulk[expression] == pytest.approx(
                store.prob_expression(expression), abs=1e-12
            )

    def test_batch_reuses_cache_across_calls(self):
        conditions, store, __ = self._engine_pair(3)
        engine = ProbabilityEngine(store)
        first = engine.probability_many(conditions)
        computed = engine.n_computations
        second = engine.probability_many(conditions)
        assert second == first
        assert engine.n_computations == computed


class TestLRUCache:
    def test_eviction_order(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.get("a") == 1  # refreshes "a"
        cache["c"] = 3  # evicts "b", the least recently used
        assert "b" not in cache
        assert cache.get("a") == 1 and cache.get("c") == 3
        assert cache.evictions == 1

    def test_unbounded_mode(self):
        cache = LRUCache(0)
        for i in range(1000):
            cache[i] = i
        assert len(cache) == 1000
        assert cache.evictions == 0

    def test_stats(self):
        cache = LRUCache(4)
        cache["x"] = 1
        cache.get("x")
        cache.get("missing")
        stats = cache.stats()
        assert stats["hits"] == 1
        assert stats["misses"] == 1
        assert stats["size"] == 1
        assert stats["maxsize"] == 4

    def test_engine_cache_stays_bounded(self):
        dataset = random_dataset(4, n=40, missing_rate=0.4)
        ctable = build_ctable(dataset, alpha=0.3)
        store = DistributionStore(uniform_distributions(dataset), ctable.constraints)
        engine = ProbabilityEngine(store, cache_size=4)
        conditions = [ctable.condition(o) for o in sorted(ctable.conditions)]
        engine.probability_many(conditions)
        assert len(engine._cache) <= 4
