"""Direct unit tests for factors and variable elimination internals."""

import numpy as np
import pytest

from repro.bayesnet import Factor, VariableElimination


class TestFactor:
    def test_rank_validation(self):
        with pytest.raises(ValueError):
            Factor((0, 1), np.ones(3))

    def test_restrict_drops_axis(self):
        table = np.arange(6).reshape(2, 3).astype(float)
        factor = Factor((0, 1), table)
        restricted = factor.restrict(0, 1)
        assert restricted.variables == (1,)
        assert restricted.table.tolist() == [3.0, 4.0, 5.0]

    def test_restrict_second_variable(self):
        table = np.arange(6).reshape(2, 3).astype(float)
        restricted = Factor((0, 1), table).restrict(1, 2)
        assert restricted.variables == (0,)
        assert restricted.table.tolist() == [2.0, 5.0]

    def test_marginalize(self):
        table = np.arange(6).reshape(2, 3).astype(float)
        summed = Factor((0, 1), table).marginalize(1)
        assert summed.variables == (0,)
        assert summed.table.tolist() == [3.0, 12.0]

    def test_multiply_disjoint_scopes(self):
        a = Factor((0,), np.array([1.0, 2.0]))
        b = Factor((1,), np.array([3.0, 4.0, 5.0]))
        product = a.multiply(b)
        assert product.variables == (0, 1)
        assert product.table.shape == (2, 3)
        assert product.table[1, 2] == pytest.approx(10.0)

    def test_multiply_shared_scope(self):
        a = Factor((0, 1), np.ones((2, 2)) * 2.0)
        b = Factor((1,), np.array([1.0, 3.0]))
        product = a.multiply(b)
        assert product.variables == (0, 1)
        assert product.table[0, 1] == pytest.approx(6.0)

    def test_multiply_handles_axis_permutation(self):
        # b's scope lists variables in the opposite order.
        a = Factor((0, 1), np.array([[1.0, 2.0], [3.0, 4.0]]))
        b = Factor((1, 0), np.array([[10.0, 100.0], [20.0, 200.0]]))
        product = a.multiply(b)
        assert product.variables == (0, 1)
        # product[i, j] = a[i, j] * b[j, i]
        assert product.table[0, 1] == pytest.approx(2.0 * 20.0)
        assert product.table[1, 0] == pytest.approx(3.0 * 100.0)


class TestVariableElimination:
    def test_independent_factors(self):
        factors = [
            Factor((0,), np.array([0.25, 0.75])),
            Factor((1,), np.array([0.5, 0.5])),
        ]
        ve = VariableElimination(factors, [2, 2])
        assert ve.query(0, {}) == pytest.approx([0.25, 0.75])

    def test_evidence_on_target(self):
        ve = VariableElimination([Factor((0,), np.array([0.5, 0.5]))], [2])
        assert ve.query(0, {0: 1}).tolist() == [0.0, 1.0]

    def test_chain_query(self):
        # P(0), P(1 | 0): query P(1).
        prior = Factor((0,), np.array([0.4, 0.6]))
        conditional = Factor((0, 1), np.array([[0.9, 0.1], [0.2, 0.8]]))
        ve = VariableElimination([prior, conditional], [2, 2])
        expected_1 = 0.4 * 0.1 + 0.6 * 0.8
        assert ve.query(1, {})[1] == pytest.approx(expected_1)

    def test_zero_probability_evidence_uniform_fallback(self):
        prior = Factor((0,), np.array([1.0, 0.0]))
        conditional = Factor((0, 1), np.array([[1.0, 0.0], [0.5, 0.5]]))
        ve = VariableElimination([prior, conditional], [2, 2])
        # Evidence 1=1 has zero probability; fall back to uniform.
        assert ve.query(0, {1: 1}) == pytest.approx([0.5, 0.5])
