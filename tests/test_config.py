"""Tests for BayesCrowdConfig validation."""

import pytest

from repro.core import BayesCrowdConfig


class TestValidation:
    def test_defaults_valid(self):
        config = BayesCrowdConfig()
        assert config.strategy == "hhs"
        assert config.alpha > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"budget": -1},
            {"latency": 0},
            {"m": 0},
            {"strategy": "magic"},
            {"probability_method": "magic"},
            {"answer_threshold": 1.5},
            {"utility_mode": "magic"},
            {"distribution_source": "magic"},
            {"dominator_method": "magic"},
            {"worker_accuracy": -0.1},
            {"assignments_per_task": 0},
            {"assignments_per_task": -3},
            {"bn_smoothing": -0.5},
            {"bn_max_parents": -1},
            {"max_retries": -1},
            {"backoff_base": -0.01},
            {"backoff_cap": 0.01, "backoff_base": 0.5},
            {"requeue_policy": "magic"},
            {"faults": "not-a-fault-model"},
            {"cache_size": -1},
            {"utility_cache_size": -1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BayesCrowdConfig(**kwargs)

    def test_selection_knobs_accepted(self):
        config = BayesCrowdConfig(selection_batch=False, utility_cache_size=0)
        assert config.selection_batch is False
        assert config.utility_cache_size == 0  # 0 = unbounded caches

    def test_resilience_knobs_accepted(self):
        from repro.crowd import FaultModel

        config = BayesCrowdConfig(
            max_retries=0,
            backoff_base=0.0,
            backoff_cap=0.0,
            requeue_policy="refund",
            faults=FaultModel(drop_rate=0.2),
        )
        assert config.faults.drop_rate == 0.2
        assert config.requeue_policy == "refund"


class TestTasksPerRound:
    def test_ceiling_division(self):
        assert BayesCrowdConfig(budget=50, latency=5).tasks_per_round() == 10
        assert BayesCrowdConfig(budget=51, latency=5).tasks_per_round() == 11
        assert BayesCrowdConfig(budget=3, latency=5).tasks_per_round() == 1

    def test_zero_budget(self):
        assert BayesCrowdConfig(budget=0).tasks_per_round() == 0
