"""Tests for BayesCrowdConfig validation."""

import pytest

from repro.core import BayesCrowdConfig


class TestValidation:
    def test_defaults_valid(self):
        config = BayesCrowdConfig()
        assert config.strategy == "hhs"
        assert config.alpha > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"budget": -1},
            {"latency": 0},
            {"m": 0},
            {"strategy": "magic"},
            {"probability_method": "magic"},
            {"answer_threshold": 1.5},
            {"utility_mode": "magic"},
            {"distribution_source": "magic"},
            {"dominator_method": "magic"},
            {"worker_accuracy": -0.1},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BayesCrowdConfig(**kwargs)


class TestTasksPerRound:
    def test_ceiling_division(self):
        assert BayesCrowdConfig(budget=50, latency=5).tasks_per_round() == 10
        assert BayesCrowdConfig(budget=51, latency=5).tasks_per_round() == 11
        assert BayesCrowdConfig(budget=3, latency=5).tasks_per_round() == 1

    def test_zero_budget(self):
        assert BayesCrowdConfig(budget=0).tasks_per_round() == 0
