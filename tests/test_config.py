"""Tests for BayesCrowdConfig validation."""

import pytest

from repro.core import BayesCrowdConfig


class TestValidation:
    def test_defaults_valid(self):
        config = BayesCrowdConfig()
        assert config.strategy == "hhs"
        assert config.alpha > 0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"alpha": 0.0},
            {"alpha": -1.0},
            {"budget": -1},
            {"latency": 0},
            {"m": 0},
            {"strategy": "magic"},
            {"probability_method": "magic"},
            {"answer_threshold": 1.5},
            {"utility_mode": "magic"},
            {"distribution_source": "magic"},
            {"dominator_method": "magic"},
            {"worker_accuracy": -0.1},
            {"assignments_per_task": 0},
            {"assignments_per_task": -3},
            {"bn_smoothing": -0.5},
            {"bn_max_parents": -1},
            {"max_retries": -1},
            {"backoff_base": -0.01},
            {"backoff_cap": 0.01, "backoff_base": 0.5},
            {"requeue_policy": "magic"},
            {"faults": "not-a-fault-model"},
            {"cache_size": -1},
            {"utility_cache_size": -1},
            {"circuit_cache_size": -1},
            {"circuit_cache_size": True},
            {"probability_backend": "forest", "probability_method": "naive"},
        ],
    )
    def test_invalid_values_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BayesCrowdConfig(**kwargs)

    def test_selection_knobs_accepted(self):
        config = BayesCrowdConfig(selection_batch=False, utility_cache_size=0)
        assert config.selection_batch is False
        assert config.utility_cache_size == 0  # 0 = unbounded caches

    def test_circuit_cache_knob_accepted(self):
        config = BayesCrowdConfig(
            probability_backend="forest", circuit_cache_size=0
        )
        assert config.circuit_cache_size == 0  # 0 = unbounded roots

    def test_resilience_knobs_accepted(self):
        from repro.crowd import FaultModel

        config = BayesCrowdConfig(
            max_retries=0,
            backoff_base=0.0,
            backoff_cap=0.0,
            requeue_policy="refund",
            faults=FaultModel(drop_rate=0.2),
        )
        assert config.faults.drop_rate == 0.2
        assert config.requeue_policy == "refund"


class TestTasksPerRound:
    def test_ceiling_division(self):
        assert BayesCrowdConfig(budget=50, latency=5).tasks_per_round() == 10
        assert BayesCrowdConfig(budget=51, latency=5).tasks_per_round() == 11
        assert BayesCrowdConfig(budget=3, latency=5).tasks_per_round() == 1

    def test_zero_budget(self):
        assert BayesCrowdConfig(budget=0).tasks_per_round() == 0


class TestIntegrityAndGuardKnobs:
    def test_defaults(self):
        config = BayesCrowdConfig()
        assert config.strict_integrity is False
        assert config.reask_budget_frac == 0.25
        assert config.adpll_node_budget == 0
        assert config.adpll_deadline_s == 0.0
        assert config.reliability_prior == (4.0, 1.0)

    def test_valid_values_accepted(self):
        config = BayesCrowdConfig(
            strict_integrity=True,
            reask_budget_frac=0.0,
            adpll_node_budget=10_000,
            adpll_deadline_s=0.5,
            reliability_prior=(2, 2),
        )
        assert config.strict_integrity is True
        assert config.reask_budget_frac == 0.0
        assert config.reliability_prior == (2.0, 2.0)  # normalized to floats

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"strict_integrity": "yes"},
            {"reask_budget_frac": -0.1},
            {"reask_budget_frac": 1.5},
            {"adpll_node_budget": -1},
            {"adpll_node_budget": True},
            {"adpll_node_budget": 2.5},
            {"adpll_deadline_s": -0.5},
            {"reliability_prior": (0.0, 1.0)},
            {"reliability_prior": (1.0,)},
            {"reliability_prior": (1.0, 2.0, 3.0)},
            {"reliability_prior": "broad"},
        ],
    )
    def test_invalid_values_rejected_with_typed_error(self, kwargs):
        from repro.errors import ConfigError

        with pytest.raises(ConfigError):
            BayesCrowdConfig(**kwargs)

    def test_config_error_is_a_value_error(self):
        from repro.errors import ConfigError

        # Pre-existing `except ValueError` call sites must keep working.
        assert issubclass(ConfigError, ValueError)
        with pytest.raises(ValueError):
            BayesCrowdConfig(reask_budget_frac=2.0)
