"""Tests for the simulated crowdsourcing substrate."""

import numpy as np
import pytest

from repro.crowd import (
    ComparisonTask,
    ConflictingBatchError,
    CrowdPlatform,
    DuplicateTaskError,
    SimulatedCrowdPlatform,
    SimulatedWorker,
    WorkerPool,
    majority_vote,
)
from repro.crowd.platform import CrowdStats
from repro.ctable import Relation, var_greater_const, var_greater_var
from repro.datasets import sample_dataset


class TestTask:
    def test_question_and_variables(self):
        task = ComparisonTask(var_greater_const(4, 1, 2), for_object=0)
        assert "Var(o5, a2)" in task.question()
        assert task.variables() == ((4, 1),)

    def test_conflicts(self):
        a = ComparisonTask(var_greater_const(4, 1, 2))
        b = ComparisonTask(var_greater_const(4, 1, 5))
        c = ComparisonTask(var_greater_const(3, 1, 2))
        assert a.conflicts_with(b)
        assert not a.conflicts_with(c)

    def test_var_var_conflicts_through_either_side(self):
        a = ComparisonTask(var_greater_var(0, 1, 2))
        b = ComparisonTask(var_greater_const(1, 2, 3))
        assert a.conflicts_with(b)

    def test_unique_ids(self):
        a = ComparisonTask(var_greater_const(0, 0, 1))
        b = ComparisonTask(var_greater_const(0, 0, 1))
        assert a.task_id != b.task_id


class TestWorker:
    def test_perfect_worker(self, rng):
        worker = SimulatedWorker(0, 1.0, rng)
        assert worker.answer(Relation.GREATER) is Relation.GREATER

    def test_zero_accuracy_never_correct(self, rng):
        worker = SimulatedWorker(0, 0.0, rng)
        for __ in range(50):
            assert worker.answer(Relation.EQUAL) is not Relation.EQUAL

    def test_accuracy_statistics(self):
        worker = SimulatedWorker(0, 0.8, np.random.default_rng(0))
        hits = sum(worker.answer(Relation.LESS) is Relation.LESS for __ in range(5000))
        assert hits / 5000 == pytest.approx(0.8, abs=0.02)

    def test_invalid_accuracy(self, rng):
        with pytest.raises(ValueError):
            SimulatedWorker(0, 1.5, rng)


class TestWorkerPool:
    def test_scalar_accuracy_builds_homogeneous_pool(self, rng):
        pool = WorkerPool(0.9, rng=rng, size=10)
        assert len(pool.workers) == 10
        assert pool.mean_accuracy() == pytest.approx(0.9)

    def test_heterogeneous_pool(self, rng):
        pool = WorkerPool([0.7, 0.9, 1.0], rng=rng)
        assert pool.mean_accuracy() == pytest.approx(0.8667, abs=1e-3)

    def test_draw_distinct_when_possible(self, rng):
        pool = WorkerPool(1.0, rng=rng, size=5)
        drawn = pool.draw(5)
        assert len({w.worker_id for w in drawn}) == 5

    def test_draw_with_replacement_when_small(self, rng):
        pool = WorkerPool([1.0], rng=rng)
        assert len(pool.draw(3)) == 3

    def test_empty_pool_rejected(self, rng):
        with pytest.raises(ValueError):
            WorkerPool([], rng=rng)


class TestMajorityVote:
    def test_unanimous(self):
        assert majority_vote([Relation.LESS] * 3) is Relation.LESS

    def test_two_to_one(self):
        votes = [Relation.GREATER, Relation.LESS, Relation.GREATER]
        assert majority_vote(votes) is Relation.GREATER

    def test_three_way_tie_picks_voted_option(self, rng):
        votes = [Relation.LESS, Relation.EQUAL, Relation.GREATER]
        assert majority_vote(votes, rng) in votes

    def test_tie_breaks_vary_without_rng(self):
        # Regression: the fallback used to build a fresh default_rng(0)
        # per call, so every no-rng tie resolved to the same winner.
        votes = [Relation.LESS, Relation.EQUAL, Relation.GREATER]
        winners = {majority_vote(votes) for _ in range(200)}
        assert len(winners) > 1

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            majority_vote([])


class TestPlatform:
    def _platform(self, accuracy=1.0, **kwargs):
        return SimulatedCrowdPlatform(
            sample_dataset(),
            worker_accuracy=accuracy,
            rng=np.random.default_rng(0),
            **kwargs,
        )

    def test_requires_ground_truth(self):
        ds = sample_dataset()
        ds = ds.__class__(
            values=ds.values, domain_sizes=ds.domain_sizes, complete=None
        )
        with pytest.raises(ValueError):
            SimulatedCrowdPlatform(ds)

    def test_true_relation_from_ground_truth(self):
        platform = self._platform()
        # Ground truth: Var(o5, a2) = 7 > 2.
        task = ComparisonTask(var_greater_const(4, 1, 2))
        assert platform.true_relation(task) is Relation.GREATER

    def test_perfect_workers_answer_truth(self):
        platform = self._platform()
        task = ComparisonTask(var_greater_const(4, 2, 3))  # truth: equal
        answers = platform.post_batch([task])
        assert answers[task] is Relation.EQUAL

    def test_accounting(self):
        platform = self._platform()
        t1 = ComparisonTask(var_greater_const(4, 1, 2))
        t2 = ComparisonTask(var_greater_const(1, 1, 3))
        platform.post_batch([t1, t2])
        platform.post_batch([ComparisonTask(var_greater_const(4, 2, 1))])
        assert platform.stats.tasks_posted == 3
        assert platform.stats.rounds == 2
        assert platform.stats.worker_answers == 9

    def test_empty_batch_is_free(self):
        platform = self._platform()
        assert platform.post_batch([]) == {}
        assert platform.stats.rounds == 0

    def test_conflicting_batch_rejected(self):
        platform = self._platform()
        t1 = ComparisonTask(var_greater_const(4, 1, 2))
        t2 = ComparisonTask(var_greater_const(4, 1, 5))
        with pytest.raises(ConflictingBatchError):
            platform.post_batch([t1, t2])

    def test_conflict_enforcement_can_be_disabled(self):
        platform = self._platform(enforce_conflict_free=False)
        t1 = ComparisonTask(var_greater_const(4, 1, 2))
        t2 = ComparisonTask(var_greater_const(4, 1, 5))
        answers = platform.post_batch([t1, t2])
        assert len(answers) == 2

    def test_noisy_workers_majority_accuracy(self):
        platform = self._platform(accuracy=0.8)
        task_expr = var_greater_const(4, 1, 2)
        correct = 0
        n = 600
        for __ in range(n):
            task = ComparisonTask(task_expr)
            answers = platform.post_batch([task])
            if answers[task] is Relation.GREATER:
                correct += 1
        # Majority of three 0.8-accurate workers: p^3 + 3 p^2 (1-p) + small
        # tie-break mass ~ 0.9.
        assert correct / n == pytest.approx(0.9, abs=0.05)
        assert platform.stats.majority_accuracy() == pytest.approx(correct / n)

    def test_duplicate_task_in_batch_rejected(self):
        platform = self._platform()
        task = ComparisonTask(var_greater_const(4, 1, 2))
        with pytest.raises(DuplicateTaskError):
            platform.post_batch([task, task])

    def test_duplicate_check_runs_before_conflict_check(self):
        # The same task twice is a duplicate, not a variable conflict.
        platform = self._platform()
        task = ComparisonTask(var_greater_const(4, 1, 2))
        with pytest.raises(DuplicateTaskError):
            platform.post_batch([task, task])
        # ... but two distinct tasks on one variable still conflict.
        with pytest.raises(ConflictingBatchError):
            platform.post_batch(
                [
                    ComparisonTask(var_greater_const(4, 1, 2)),
                    ComparisonTask(var_greater_const(4, 1, 5)),
                ]
            )

    def test_satisfies_platform_protocol(self):
        assert isinstance(self._platform(), CrowdPlatform)

    def test_state_dict_round_trip_replays_noise(self):
        a = self._platform(accuracy=0.7)
        a.post_batch([ComparisonTask(var_greater_const(4, 1, 2))])
        state = a.state_dict()
        b = self._platform(accuracy=0.7)
        b.load_state_dict(state)
        assert b.stats.tasks_posted == a.stats.tasks_posted
        expr = var_greater_const(1, 1, 3)
        answer_a = a.post_batch([ComparisonTask(expr)])
        answer_b = b.post_batch([ComparisonTask(expr)])
        assert list(answer_a.values()) == list(answer_b.values())


class TestAbstention:
    def test_abstaining_worker_returns_none(self, rng):
        worker = SimulatedWorker(0, 1.0, rng, abstain_rate=1.0)
        assert worker.answer(Relation.GREATER) is None

    def test_invalid_abstain_rate(self, rng):
        with pytest.raises(ValueError):
            SimulatedWorker(0, 1.0, rng, abstain_rate=1.5)

    def test_all_abstained_task_is_unanswered(self):
        rng = np.random.default_rng(0)
        platform = SimulatedCrowdPlatform(
            sample_dataset(),
            worker_pool=WorkerPool(1.0, rng=rng, abstain_rate=1.0),
            rng=rng,
        )
        task = ComparisonTask(var_greater_const(4, 1, 2))
        assert platform.post_batch([task]) == {}
        assert platform.stats.tasks_unanswered == 1
        assert platform.stats.worker_answers == 0
        assert platform.stats.tasks_posted == 1

    def test_partial_abstention_still_answers(self):
        rng = np.random.default_rng(1)
        platform = SimulatedCrowdPlatform(
            sample_dataset(),
            worker_pool=WorkerPool(1.0, rng=rng, abstain_rate=0.3),
            rng=rng,
        )
        answered = unanswered = 0
        for __ in range(200):
            task = ComparisonTask(var_greater_const(4, 1, 2))
            if platform.post_batch([task]):
                answered += 1
            else:
                unanswered += 1
        # All three workers must abstain for a no-answer: ~0.3^3 = 2.7%.
        assert unanswered / 200 == pytest.approx(0.027, abs=0.04)
        assert answered > unanswered
        assert platform.stats.tasks_unanswered == unanswered


class TestCrowdStats:
    def test_majority_accuracy_no_tasks_is_one(self):
        assert CrowdStats().majority_accuracy() == 1.0

    def test_majority_accuracy_all_unanswered_is_one(self):
        stats = CrowdStats(tasks_posted=5, tasks_unanswered=5)
        assert stats.majority_accuracy() == 1.0

    def test_majority_accuracy_excludes_unanswered(self):
        stats = CrowdStats(
            tasks_posted=10, tasks_unanswered=2, correct_majorities=6
        )
        assert stats.majority_accuracy() == pytest.approx(6 / 8)

    def test_fault_counters_default_to_zero(self):
        stats = CrowdStats()
        assert stats.tasks_expired == 0
        assert stats.transient_failures == 0
        assert stats.spam_answers == 0
        assert stats.stragglers == 0
