"""Smoke + unit tests for the experiment harness (tiny scales)."""

import json

import pytest

from repro.experiments import ExperimentResult, scale_factor, scaled
from repro.experiments.cli import RUNNERS, main
from repro.experiments.data import (
    crowdsky_nba,
    dataset_with_distributions,
    nba_dataset,
    synthetic_dataset,
)
from repro.experiments.sweep import defaults_for, sweep_point


@pytest.fixture(autouse=True)
def tiny_scale(monkeypatch):
    """Shrink every experiment to smoke-test size."""
    monkeypatch.setenv("REPRO_SCALE", "0.12")


class TestScale:
    def test_scale_factor_reads_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "2.5")
        assert scale_factor() == 2.5

    def test_scaled_applies_factor_and_floor(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "0.001")
        assert scaled(1000) == 10  # floor

    def test_quick_reduction(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "1.0")
        assert scaled(1000, quick=True) == 400

    def test_invalid_scale(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "zero")
        with pytest.raises(ValueError):
            scale_factor()
        monkeypatch.setenv("REPRO_SCALE", "-1")
        with pytest.raises(ValueError):
            scale_factor()


class TestExperimentResult:
    def _result(self):
        result = ExperimentResult("figX", "demo", columns=["a", "b"])
        result.add(a=1, b=0.123456)
        result.add(a="x", b=2.0)
        result.note("a note")
        return result

    def test_text_table_contains_rows(self):
        text = self._result().to_text()
        assert "figX: demo" in text
        assert "0.123" in text
        assert "note: a note" in text

    def test_markdown(self):
        md = self._result().to_markdown()
        assert md.startswith("### figX")
        assert "| a | b |" in md

    def test_json_round_trip(self):
        data = json.loads(self._result().to_json())
        assert data["experiment"] == "figX"
        assert len(data["rows"]) == 2


class TestDataCaching:
    def test_dataset_builders_cache(self):
        a = nba_dataset(60, 0.1)
        b = nba_dataset(60, 0.1)
        assert a is b
        assert synthetic_dataset(60, 0.1) is synthetic_dataset(60, 0.1)

    def test_crowdsky_dataset_shape(self):
        ds = crowdsky_nba(40)
        assert ds.mask[:, 2].all() and ds.mask[:, 4].all()
        assert not ds.mask[:, 0].any()

    def test_distributions_are_copies(self):
        __, d1 = dataset_with_distributions("nba", 60)
        __, d2 = dataset_with_distributions("nba", 60)
        variable = next(iter(d1))
        d1[variable][0] = 99.0
        assert d2[variable][0] != 99.0


class TestSweep:
    def test_defaults_for(self):
        assert defaults_for("nba")["budget"] == 50
        assert defaults_for("synthetic")["latency"] == 10
        with pytest.raises(ValueError):
            defaults_for("magic")

    def test_sweep_point_metrics(self):
        point = sweep_point("nba", 60, "fbs", budget=5, latency=2)
        assert set(point) >= {"f1", "time_s", "tasks", "rounds"}
        assert point["tasks"] <= 5
        assert 0.0 <= point["f1"] <= 1.0


class TestRunnersSmoke:
    @pytest.mark.parametrize(
        "name", ["fig2", "fig5", "fig7", "fig9", "fig10", "fig11", "table6"]
    )
    def test_runner_produces_rows(self, name):
        result = RUNNERS[name](True)  # quick
        assert result.rows
        assert result.experiment_id == name
        for column in result.columns:
            assert any(column in row for row in result.rows)

    def test_fig3_reports_skips(self):
        result = RUNNERS["fig3"](True)
        assert all("skipped" in row for row in result.rows)

    def test_fig4_contains_both_systems(self):
        result = RUNNERS["fig4"](True)
        systems = {row["system"] for row in result.rows}
        assert "crowdsky" in systems
        assert any(s.startswith("bayescrowd") for s in systems)


class TestCli:
    def test_cli_runs_and_writes(self, tmp_path, capsys):
        exit_code = main(["fig10", "--quick", "--out", str(tmp_path)])
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "fig10" in captured
        assert (tmp_path / "fig10.md").exists()
        assert (tmp_path / "fig10.json").exists()

    def test_cli_without_arguments_prints_help(self, capsys):
        assert main([]) == 2
        assert "experiment" in capsys.readouterr().out

    def test_cli_rejects_unknown_experiment(self):
        with pytest.raises(SystemExit):
            main(["fig99"])


class TestReport:
    def test_round_trip_and_report(self, tmp_path):
        from repro.experiments.base import ExperimentResult
        from repro.experiments.report import build_report, load_results, write_report

        result = ExperimentResult("fig5", "demo", columns=["budget", "f1"])
        result.add(budget=10, f1=0.8)
        result.add(budget=20, f1=0.9)
        result.plot_spec(x="budget", y="f1")
        (tmp_path / "fig5.json").write_text(result.to_json())

        other = ExperimentResult("fig2", "other", columns=["a"])
        other.add(a=1)
        (tmp_path / "fig2.json").write_text(other.to_json())

        loaded = load_results(tmp_path)
        assert [r.experiment_id for r in loaded] == ["fig2", "fig5"]
        report = build_report(tmp_path)
        assert "### fig5" in report and "### fig2" in report
        assert "x: budget" in report  # chart rendered
        out = write_report(tmp_path, tmp_path / "report.md")
        assert out.exists()

    def test_report_without_charts(self, tmp_path):
        from repro.experiments.base import ExperimentResult
        from repro.experiments.report import build_report

        result = ExperimentResult("table6", "demo", columns=["f1"])
        result.add(f1=0.9)
        result.plot_spec(x="f1", y="f1")
        (tmp_path / "table6.json").write_text(result.to_json())
        report = build_report(tmp_path, charts=False)
        assert "```" not in report

    def test_missing_directory(self, tmp_path):
        from repro.experiments.report import load_results

        with pytest.raises(FileNotFoundError):
            load_results(tmp_path / "nope")

    def test_from_json_infers_columns(self):
        import json

        from repro.experiments.base import ExperimentResult

        payload = json.dumps(
            {"experiment": "x", "rows": [{"b": 1, "a": 2}], "notes": []}
        )
        result = ExperimentResult.from_json(payload)
        assert result.columns == ["a", "b"]

    def test_cli_report_flag(self, tmp_path, capsys):
        from repro.experiments.cli import main

        exit_code = main(
            [
                "fig10",
                "--quick",
                "--out",
                str(tmp_path),
                "--report",
                str(tmp_path / "report.md"),
            ]
        )
        assert exit_code == 0
        assert (tmp_path / "report.md").exists()
        assert "fig10" in (tmp_path / "report.md").read_text()


class TestMoreRunnersSmoke:
    @pytest.mark.parametrize("name", ["fig6", "fig8", "ablations"])
    def test_runner_produces_rows(self, name):
        result = RUNNERS[name](True)
        assert result.rows
        assert result.experiment_id == name


class TestReplication:
    def test_replicate_point_aggregates(self):
        from repro.experiments.replication import replicate_point

        stats = replicate_point(
            "nba", 60, "fbs", seeds=(0, 1, 2), budget=8, latency=2,
            worker_accuracy=0.8,
        )
        assert set(stats) >= {"f1", "time_s", "tasks"}
        f1 = stats["f1"]
        assert f1.n == 3
        assert 0.0 <= f1.mean <= 1.0
        lo, hi = f1.interval()
        assert lo <= f1.mean <= hi

    def test_single_seed_zero_variance(self):
        from repro.experiments.replication import replicate_point

        stats = replicate_point("nba", 60, "fbs", seeds=(0,), budget=5, latency=1)
        assert stats["f1"].std == 0.0
        assert stats["f1"].half_width_95 == 0.0

    def test_perfect_workers_are_deterministic_across_seeds(self):
        from repro.experiments.replication import replicate_point

        stats = replicate_point(
            "nba", 60, "fbs", seeds=(0, 1, 2), budget=8, latency=2,
            worker_accuracy=1.0,
        )
        assert stats["f1"].std == 0.0

    def test_empty_seeds_rejected(self):
        from repro.experiments.replication import replicate_point

        with pytest.raises(ValueError):
            replicate_point("nba", 60, "fbs", seeds=())

    def test_strategy_comparison_table(self):
        from repro.experiments.replication import replicated_strategy_comparison

        result = replicated_strategy_comparison(
            n=60, seeds=(0, 1), budget=8, latency=2
        )
        assert len(result.rows) == 3
        assert {row["strategy"] for row in result.rows} == {"fbs", "ubs", "hhs"}


class TestExtensionRunners:
    @pytest.mark.parametrize("name", ["skyband", "topk", "replication"])
    def test_extension_runner_rows(self, name):
        result = RUNNERS[name](True)
        assert result.rows
        for row in result.rows:
            if "f1" in row and isinstance(row["f1"], float):
                assert 0.0 <= row["f1"] <= 1.0
