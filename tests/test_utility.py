"""Tests for entropy and the marginal utility function (Eqs. 3-5)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    entropy,
    gain_from_probabilities,
    marginal_utility,
    object_entropy,
)
from repro.ctable import Condition, var_greater_const
from repro.probability import DistributionStore, ProbabilityEngine

V, W = (0, 0), (1, 0)


def engine_for(pmfs):
    return ProbabilityEngine(DistributionStore(pmfs))


class TestEntropy:
    def test_fair_coin_is_one(self):
        assert entropy(0.5) == pytest.approx(1.0)

    def test_endpoints_are_zero(self):
        assert entropy(0.0) == 0.0
        assert entropy(1.0) == 0.0
        assert entropy(-0.1) == 0.0
        assert entropy(1.1) == 0.0

    def test_symmetric(self):
        assert entropy(0.2) == pytest.approx(entropy(0.8))

    def test_paper_values(self):
        # Example 4: H(o1)=0.72 at p=0.8, H(o4)=0.62 at p=0.153,
        # H(o5)=0.67 at p=0.823.
        assert entropy(0.8) == pytest.approx(0.72, abs=0.005)
        assert entropy(0.153) == pytest.approx(0.62, abs=0.005)
        assert entropy(0.823) == pytest.approx(0.67, abs=0.005)

    @given(st.floats(0.0, 1.0))
    def test_bounds(self, p):
        assert 0.0 <= entropy(p) <= 1.0


class TestObjectEntropy:
    def test_constant_conditions_zero(self, movies_store):
        engine = ProbabilityEngine(movies_store)
        assert object_entropy(Condition.true(), engine) == 0.0
        assert object_entropy(Condition.false(), engine) == 0.0

    def test_paper_example(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        assert object_entropy(movies_ctable.condition(0), engine) == pytest.approx(
            0.722, abs=1e-3
        )


class TestMarginalUtility:
    def test_resolving_expression_of_certain_condition_is_zero(self):
        engine = engine_for({V: np.array([0.0, 1.0])})
        c = Condition.of([[var_greater_const(0, 0, 0)]])  # Pr = 1
        assert marginal_utility(c, var_greater_const(0, 0, 0), engine) == 0.0

    def test_single_expression_utility_is_full_entropy(self):
        engine = engine_for({V: np.full(4, 0.25)})
        c = Condition.of([[var_greater_const(0, 0, 1)]])  # Pr = 0.5
        gain = marginal_utility(c, var_greater_const(0, 0, 1), engine)
        # Resolving the only expression resolves the condition entirely.
        assert gain == pytest.approx(1.0)

    def test_paper_example_o1_utilities(self, movies_ctable, movies_store):
        """Example 4: G(o1,e1)=0.072, G(o1,e2)=0.157, G(o1,e3)=0.322."""
        from repro.ctable import const_greater_var

        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(0)
        e1 = const_greater_var(2, 4, 1)  # Var(o5,a2) < 2
        e2 = const_greater_var(3, 4, 2)  # Var(o5,a3) < 3
        e3 = const_greater_var(4, 4, 3)  # Var(o5,a4) < 4
        assert marginal_utility(condition, e1, engine) == pytest.approx(0.072, abs=2e-3)
        assert marginal_utility(condition, e2, engine) == pytest.approx(0.157, abs=2e-3)
        assert marginal_utility(condition, e3, engine) == pytest.approx(0.322, abs=2e-3)

    def test_unknown_mode_rejected(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        with pytest.raises(ValueError):
            marginal_utility(
                movies_ctable.condition(0),
                next(iter(movies_ctable.condition(0).expressions())),
                engine,
                mode="magic",
            )

    def test_conditional_mode_single_expression(self):
        engine = engine_for({V: np.full(4, 0.25)})
        c = Condition.of([[var_greater_const(0, 0, 1)]])
        gain = marginal_utility(c, var_greater_const(0, 0, 1), engine, mode="conditional")
        # Proper conditioning also fully resolves a single-expression condition.
        assert gain == pytest.approx(1.0)

    def test_conditional_mode_never_exceeds_entropy(self, movies_ctable, movies_store):
        engine = ProbabilityEngine(movies_store)
        for obj in movies_ctable.undecided():
            condition = movies_ctable.condition(obj)
            h = object_entropy(condition, engine)
            for expression in condition.distinct_expressions():
                gain = marginal_utility(condition, expression, engine, mode="conditional")
                assert gain <= h + 1e-9
                # Information never hurts under proper conditioning.
                assert gain >= -1e-9

    def test_syntactic_matches_conditional_when_variable_unique(
        self, movies_ctable, movies_store
    ):
        """When an expression's variables occur nowhere else in the condition,
        the paper's syntactic substitution IS proper conditioning."""
        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(0)  # each variable occurs once
        for expression in condition.distinct_expressions():
            syntactic = marginal_utility(condition, expression, engine)
            conditional = marginal_utility(
                condition, expression, engine, mode="conditional"
            )
            assert syntactic == pytest.approx(conditional, abs=1e-9)

    def test_matches_gain_from_probabilities(self, movies_ctable, movies_store):
        """The scalar path is exactly the shared arithmetic over its probes."""
        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(0)
        for expression in condition.distinct_expressions():
            p_phi = engine.probability(condition)
            p_e = engine.store.prob_expression(expression)
            p_true = engine.probability(condition.assign_expression(expression, True))
            p_false = engine.probability(condition.assign_expression(expression, False))
            assert marginal_utility(condition, expression, engine) == (
                gain_from_probabilities(p_phi, p_e, p_true, p_false)
            )

    def test_syntactic_mode_may_go_negative_with_repeated_variables(
        self, movies_ctable, movies_store
    ):
        """The syntactic approximation ignores the correlation between an
        expression and other occurrences of its variables, so its "gain"
        can dip below zero (unlike proper conditioning) -- a documented
        property of the paper's Eq. 5 evaluation, exercised by phi(o5)."""
        engine = ProbabilityEngine(movies_store)
        condition = movies_ctable.condition(4)
        gains = [
            marginal_utility(condition, e, engine)
            for e in condition.distinct_expressions()
        ]
        assert min(gains) < 0.0
        assert max(gains) > 0.0


class TestDisjointVariableProperty:
    """When an expression's variables are disjoint from the rest of the
    condition, the expression is independent of the remaining clauses, so
    the paper's syntactic substitution and proper conditioning agree."""

    @settings(max_examples=80, deadline=None)
    @given(
        weights=st.lists(
            st.lists(st.floats(0.05, 1.0), min_size=4, max_size=4),
            min_size=2,
            max_size=4,
        ),
        thresholds=st.lists(st.integers(0, 2), min_size=4, max_size=4),
    )
    def test_syntactic_equals_conditional(self, weights, thresholds):
        pmfs = {}
        clauses = []
        for i, row in enumerate(weights):
            pmf = np.asarray(row) / np.sum(row)
            pmfs[(i, 0)] = pmf
            # One single-expression clause per variable: each expression's
            # variable occurs nowhere else in the condition.
            clauses.append([var_greater_const(i, 0, thresholds[i])])
        engine = engine_for(pmfs)
        condition = Condition.of(clauses)
        expression = clauses[0][0]
        if condition.is_constant:
            return
        syntactic = marginal_utility(condition, expression, engine)
        conditional = marginal_utility(
            condition, expression, engine, mode="conditional"
        )
        assert syntactic == pytest.approx(conditional, abs=1e-9)
