"""Tests for the observability layer: metrics, tracing, event log."""

import json

import numpy as np
import pytest

from repro import BayesCrowd, BayesCrowdConfig
from repro.cli import main as cli_main
from repro.datasets import example_distributions, sample_dataset
from repro.obs import (
    DEFAULT_BUCKETS,
    PIPELINE_PHASES,
    EventLog,
    MetricsRegistry,
    Tracer,
    check_phases,
    read_events,
)
from repro.obs.__main__ import main as obs_main
from repro.obs.__main__ import verify_selection


def movie_query(**kwargs):
    config = BayesCrowdConfig(
        alpha=1.0,
        budget=10,
        latency=5,
        strategy="hhs",
        m=2,
        distribution_source="uniform",
        **kwargs,
    )
    return BayesCrowd(sample_dataset(), config, distributions=example_distributions())


class TestRegistry:
    def test_counter_is_monotone(self):
        registry = MetricsRegistry()
        counter = registry.counter("tasks")
        counter.inc()
        counter.inc(4)
        assert registry.value("tasks") == 5
        with pytest.raises(ValueError):
            counter.inc(-1)

    def test_get_or_create_returns_same_instrument(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        with pytest.raises(ValueError):
            registry.gauge("a")

    def test_histogram_buckets_are_cumulative(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat", buckets=(0.1, 1.0))
        for value in (0.05, 0.5, 5.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.cumulative_buckets() == [(0.1, 1), (1.0, 2), (float("inf"), 3)]
        assert histogram.min == 0.05 and histogram.max == 5.0

    def test_absorb_maps_types_to_instruments(self):
        registry = MetricsRegistry()
        registry.absorb(
            {
                "computations": 42,
                "hit_rate": 0.5,
                "backend": "numpy",
                "degraded": True,
                "pairs": np.int64(7),
            },
            prefix="engine_",
        )
        snapshot = registry.snapshot()
        assert snapshot["counters"]["engine_computations"] == 42
        assert snapshot["gauges"]["engine_hit_rate"] == 0.5
        assert snapshot["gauges"]["engine_degraded"] == 1.0
        assert snapshot["gauges"]["engine_pairs"] == 7.0
        assert snapshot["info"]["engine_backend"] == "numpy"

    def test_snapshot_round_trips_through_json(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.02)
        registry.info("backend", "numpy")
        snapshot = json.loads(registry.to_json())
        rebuilt = MetricsRegistry.from_snapshot(snapshot)
        assert rebuilt.snapshot() == registry.snapshot()

    def test_prometheus_exposition(self):
        registry = MetricsRegistry()
        registry.counter("tasks posted").inc(2)
        registry.histogram("lat", buckets=(1.0,)).observe(0.5)
        registry.info("backend", "numpy")
        text = registry.to_prometheus()
        assert "# TYPE tasks_posted counter" in text
        assert "tasks_posted 2" in text
        assert 'lat_bucket{le="1"} 1' in text
        assert 'lat_bucket{le="+Inf"} 1' in text
        assert "lat_count 1" in text
        assert '# INFO backend "numpy"' in text

    def test_check_phases_reports_missing(self):
        registry = MetricsRegistry()
        registry.histogram("phase_seconds_ctable")
        missing = check_phases(registry.snapshot())
        assert "ctable" not in missing
        assert set(missing) == set(PIPELINE_PHASES) - {"ctable"}

    def test_default_buckets_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestTracer:
    def test_spans_nest_via_stack(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("inner"):
                pass
        inner, outer = tracer.spans
        assert inner.name == "inner" and inner.parent == "outer" and inner.depth == 1
        assert outer.parent is None and outer.depth == 0
        assert outer.seconds >= inner.seconds

    def test_phase_feeds_histogram(self):
        tracer = Tracer()
        with tracer.span("round[1]", phase="round"):
            pass
        with tracer.span("round[2]", phase="round"):
            pass
        histogram = tracer.registry.get("phase_seconds_round")
        assert histogram.count == 2

    def test_record_backdates_externally_timed_span(self):
        tracer = Tracer()
        span = tracer.record("preprocess", 1.5, tasks=3)
        assert span.seconds == pytest.approx(1.5)
        assert span.end == pytest.approx(span.start + 1.5)
        assert tracer.registry.get("phase_seconds_preprocess").count == 1
        assert tracer.find("preprocess") == [span]

    def test_spans_emit_events(self):
        events = EventLog()
        tracer = Tracer(event_log=events)
        with tracer.span("ctable"):
            pass
        (event,) = events.of_kind("span")
        assert event["name"] == "ctable"
        assert event["seconds"] >= 0.0


class TestEventLog:
    def test_jsonl_file_round_trip(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with EventLog(path) as log:
            log.emit("run_start", n_objects=5)
            log.emit("tasks_issued", tasks=[{"task_id": 1}], ids={3, 1})
        events = read_events(path)
        assert [e["event"] for e in events] == ["run_start", "tasks_issued"]
        assert [e["seq"] for e in events] == [1, 2]
        assert events[1]["ids"] == [1, 3]  # sets are coerced to sorted lists

    def test_coerces_numpy_and_arbitrary_values(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with EventLog(path) as log:
            log.emit("x", count=np.int64(3), expr=object())
        event = read_events(path)[0]
        assert event["count"] == 3
        assert isinstance(event["expr"], str)


class TestTracedRun:
    @pytest.fixture(scope="class")
    def traced(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("obs")
        trace_path = out / "trace.jsonl"
        metrics_path = out / "metrics.json"
        bc = movie_query(trace_path=trace_path, metrics_path=metrics_path)
        result = bc.run()
        return bc, result, trace_path, metrics_path

    def test_all_pipeline_phases_covered(self, traced):
        _, result, __, ___ = traced
        assert check_phases(result.metrics) == []

    def test_round_histogram_counts_rounds(self, traced):
        _, result, __, ___ = traced
        hist = result.metrics["histograms"]["phase_seconds_round"]
        assert hist["count"] == result.rounds > 0

    def test_span_nesting_matches_pipeline(self, traced):
        _, result, __, ___ = traced
        parents = {span["name"]: span["parent"] for span in result.trace}
        assert parents["preprocess"] == "run"
        assert parents["ctable"] == "run"
        assert parents["crowd"] == "run"
        assert parents["round[1]"] == "crowd"
        assert parents["run"] is None

    def test_event_log_accounts_for_every_task(self, traced):
        _, result, trace_path, __ = traced
        events = read_events(trace_path)
        issued = [
            task
            for event in events
            if event["event"] == "tasks_issued"
            for task in event["tasks"]
        ]
        assert len(issued) == result.tasks_posted
        issued_ids = {task["task_id"] for task in issued}
        answered_ids = {
            task_id
            for event in events
            if event["event"] == "answers_applied"
            for task_id in event["task_ids"]
        }
        assert answered_ids <= issued_ids
        (run_end,) = [e for e in events if e["event"] == "run_end"]
        assert run_end["tasks_posted"] == result.tasks_posted

    def test_registry_carries_engine_counters(self, traced):
        _, result, __, ___ = traced
        assert (
            result.metrics["counters"]["engine_computations"]
            == result.engine_stats["computations"]
        )

    def test_metrics_file_passes_verifier(self, traced, capsys):
        _, __, trace_path, metrics_path = traced
        assert obs_main([str(metrics_path), "--trace", str(trace_path)]) == 0
        assert "metrics ok" in capsys.readouterr().out

    def test_prometheus_suffix_selects_text_format(self, tmp_path):
        metrics_path = tmp_path / "metrics.prom"
        movie_query(metrics_path=metrics_path).run()
        text = metrics_path.read_text()
        assert "# TYPE phase_seconds_round histogram" in text


def selection_snapshot(candidates=10, evals=6, hits=3, skipped=1, ratio=0.4):
    return {
        "counters": {
            "utility_candidates_total": candidates,
            "utility_evals_total": evals,
            "residual_cache_hits": hits,
            "utility_skipped_total": skipped,
        },
        "gauges": {"utility_batch_dedup_ratio": ratio},
    }


class TestSelectionVerifier:
    def test_consistent_counters_pass(self):
        assert verify_selection(selection_snapshot(), require=True) == []

    def test_accounting_mismatch_reported(self):
        problems = verify_selection(selection_snapshot(evals=7))
        assert len(problems) == 1
        assert "utility_evals_total" in problems[0]

    def test_missing_counters_pass_unless_required(self):
        assert verify_selection({"counters": {}}) == []
        problems = verify_selection({"counters": {}}, require=True)
        assert problems and "missing" in problems[0]

    def test_dedup_ratio_bounds(self):
        problems = verify_selection(selection_snapshot(ratio=1.5))
        assert problems and "utility_batch_dedup_ratio" in problems[0]

    def test_missing_ratio_only_required_with_flag(self):
        snapshot = selection_snapshot()
        del snapshot["gauges"]["utility_batch_dedup_ratio"]
        assert verify_selection(snapshot) == []
        assert verify_selection(snapshot, require=True) != []

    def test_real_run_passes_strict_verification(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        movie_query(metrics_path=metrics_path).run()
        assert obs_main([str(metrics_path), "--selection"]) == 0
        assert "selection ok" in capsys.readouterr().out

    def test_inconsistent_snapshot_fails_cli(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        movie_query(metrics_path=metrics_path).run()
        snapshot = json.loads(metrics_path.read_text())
        snapshot["counters"]["utility_evals_total"] += 1
        metrics_path.write_text(json.dumps(snapshot))
        assert obs_main([str(metrics_path)]) == 2
        assert "selection problem" in capsys.readouterr().err


class TestCLIFlags:
    def test_trace_and_metrics_flags(self, tmp_path, capsys):
        trace_path = tmp_path / "t.jsonl"
        metrics_path = tmp_path / "m.json"
        code = cli_main(
            [
                "--dataset", "movies",
                "--budget", "6",
                "--latency", "3",
                "--trace-out", str(trace_path),
                "--metrics-out", str(metrics_path),
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert str(trace_path) in out and str(metrics_path) in out
        snapshot = json.loads(metrics_path.read_text())
        assert check_phases(snapshot) == []
        assert obs_main([str(metrics_path), "--trace", str(trace_path)]) == 0

    def test_verifier_fails_on_missing_phase(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        registry = MetricsRegistry()
        registry.histogram("phase_seconds_ctable")
        metrics_path.write_text(registry.to_json())
        assert obs_main([str(metrics_path)]) == 2
        assert "missing phase histogram" in capsys.readouterr().err


def integrity_snapshot(aggregated=10, applied=8, quarantined=2, reasked=1):
    return {
        "counters": {
            "answers_aggregated": aggregated,
            "answers_applied": applied,
            "answers_quarantined": quarantined,
            "answers_reasked": reasked,
        },
        "gauges": {},
    }


class TestIntegrityVerifier:
    def test_consistent_counters_pass(self):
        from repro.obs.__main__ import verify_integrity

        assert verify_integrity(integrity_snapshot(), require=True) == []

    def test_accounting_mismatch_reported(self):
        from repro.obs.__main__ import verify_integrity

        problems = verify_integrity(integrity_snapshot(applied=9))
        assert len(problems) == 1
        assert "answers_aggregated" in problems[0]

    def test_missing_counters_pass_unless_required(self):
        from repro.obs.__main__ import verify_integrity

        assert verify_integrity({"counters": {}}) == []
        problems = verify_integrity({"counters": {}}, require=True)
        assert problems and "missing" in problems[0]

    def test_excess_reasks_reported(self):
        from repro.obs.__main__ import verify_integrity

        problems = verify_integrity(integrity_snapshot(reasked=99))
        assert problems and "answers_reasked" in problems[0]

    def test_real_run_passes_strict_verification(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        movie_query(metrics_path=metrics_path).run()
        assert obs_main([str(metrics_path), "--integrity"]) == 0
        assert "integrity ok" in capsys.readouterr().out

    def test_violated_invariant_fails_cli(self, tmp_path, capsys):
        metrics_path = tmp_path / "m.json"
        movie_query(metrics_path=metrics_path).run()
        snapshot = json.loads(metrics_path.read_text())
        snapshot["counters"]["answers_applied"] += 1
        metrics_path.write_text(json.dumps(snapshot))
        assert obs_main([str(metrics_path)]) == 2
        assert "integrity problem" in capsys.readouterr().err
